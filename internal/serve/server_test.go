package serve_test

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/report"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// quietLog keeps request logs out of test output.
var quietLog = slog.New(slog.NewTextHandler(io.Discard, nil))

// testOptions keeps sweeps and cluster runs small enough for CI while
// staying deterministic; the scale is distinct from other packages' test
// scales only for clarity, not correctness.
func testOptions() report.Options {
	o := report.DefaultOptions()
	o.Instrs = 30_000
	o.Warmup = 10_000
	o.Scale = 0.004
	return o
}

// countingBackend wraps a MemoBackend and counts traffic; an optional gate
// blocks every Load until released, letting tests hold a render in flight.
type countingBackend struct {
	inner sweep.MemoBackend
	gate  chan struct{} // nil = never block
	mu    sync.Mutex
	hits  int
	sims  int // Store calls, i.e. real simulations
}

func (b *countingBackend) Load(ctx context.Context, k sweep.Key) (*uarch.Counters, bool) {
	if b.gate != nil {
		<-b.gate
	}
	c, ok := b.inner.Load(ctx, k)
	if ok {
		b.mu.Lock()
		b.hits++
		b.mu.Unlock()
	}
	return c, ok
}

func (b *countingBackend) Store(ctx context.Context, k sweep.Key, c *uarch.Counters) {
	b.mu.Lock()
	b.sims++
	b.mu.Unlock()
	b.inner.Store(ctx, k, c)
}

func (b *countingBackend) counts() (hits, sims int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.hits, b.sims
}

// memoryBackend is a plain map MemoBackend for tests that don't need disk.
type memoryBackend struct {
	mu sync.Mutex
	m  map[sweep.Key]*uarch.Counters
}

func newMemoryBackend() *memoryBackend { return &memoryBackend{m: map[sweep.Key]*uarch.Counters{}} }

func (b *memoryBackend) Load(_ context.Context, k sweep.Key) (*uarch.Counters, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.m[k]
	return c, ok
}

func (b *memoryBackend) Store(_ context.Context, k sweep.Key, c *uarch.Counters) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.m[k] = c
}

func get(t *testing.T, ts *httptest.Server, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestColdHerdCoalesces is acceptance criterion 1: two concurrent cold
// requests for the same figure share one render and one sweep. The gate
// holds the first render mid-sweep until the second request has verifiably
// joined it (Stats().Coalesced bumps at join time).
func TestColdHerdCoalesces(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	gate := make(chan struct{})
	backend := &countingBackend{inner: newMemoryBackend(), gate: gate}
	srv := serve.New(serve.Config{Options: testOptions(), Backend: backend, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type reply struct {
		status int
		body   []byte
	}
	replies := make(chan reply, 2)
	for i := 0; i < 2; i++ {
		go func() {
			resp, body := get(t, ts, "/v1/figures/3", nil)
			replies <- reply{resp.StatusCode, body}
		}()
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().Coalesced == 0 {
		if time.Now().After(deadline) {
			t.Fatal("second request never joined the in-flight render")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate) // both requests are now riding one render; let it run

	a, b := <-replies, <-replies
	if a.status != 200 || b.status != 200 {
		t.Fatalf("statuses = %d, %d", a.status, b.status)
	}
	if string(a.body) != string(b.body) {
		t.Fatal("coalesced requests returned different bytes")
	}
	if hits, sims := backend.counts(); sims != len(core.Registry()) || hits != 0 {
		t.Fatalf("sims=%d hits=%d, want exactly one sweep (%d sims)", sims, hits, len(core.Registry()))
	}
	if got := srv.Stats().Coalesced; got != 1 {
		t.Fatalf("coalesced = %d, want 1", got)
	}
}

// TestWarmStoreSurvivesRestart is acceptance criterion 2: a second server
// ("restarted process") over the same store directory serves the same
// bytes without a single re-simulation.
func TestWarmStoreSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization sweep")
	}
	dir := t.TempDir()
	opts := testOptions()

	st1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold := &countingBackend{inner: st1.Backend(nil)}
	srv1 := serve.New(serve.Config{Options: opts, Backend: cold, Logger: quietLog})
	ts1 := httptest.NewServer(srv1.Handler())
	resp1, body1 := get(t, ts1, "/v1/figures/3", nil)
	ts1.Close()
	srv1.Close()
	if resp1.StatusCode != 200 {
		t.Fatalf("cold request status = %d", resp1.StatusCode)
	}
	if _, sims := cold.counts(); sims != len(core.Registry()) {
		t.Fatalf("cold server simulated %d workloads, want %d", sims, len(core.Registry()))
	}

	st2, err := store.Open(dir) // fresh handle, fresh engine: the restart
	if err != nil {
		t.Fatal(err)
	}
	warm := &countingBackend{inner: st2.Backend(nil)}
	srv2 := serve.New(serve.Config{Options: opts, Backend: warm, Logger: quietLog})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp2, body2 := get(t, ts2, "/v1/figures/3", nil)
	if resp2.StatusCode != 200 {
		t.Fatalf("warm request status = %d", resp2.StatusCode)
	}
	if string(body1) != string(body2) {
		t.Fatal("restarted server served different bytes")
	}
	hits, sims := warm.counts()
	if sims != 0 || hits != len(core.Registry()) {
		t.Fatalf("restart: sims=%d hits=%d, want 0 simulations and %d store hits", sims, hits, len(core.Registry()))
	}
}

// TestTable1MatchesCLI is acceptance criterion 3: the service's JSON and
// CSV for Table I are byte-identical to what the CLI emits at the same
// seed — cmd/dcbench prints exactly Table.CSV() / Table.JSON(), so parity
// with those encoders is parity with the CLI.
func TestTable1MatchesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("characterization + cluster sweep")
	}
	opts := testOptions()
	srv := serve.New(serve.Config{Options: opts, Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	want, _, err := report.TableByNumber(context.Background(), opts, 1)
	if err != nil {
		t.Fatal(err)
	}

	resp, body := get(t, ts, "/v1/tables/1?format=csv", nil)
	if resp.StatusCode != 200 || !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/csv") {
		t.Fatalf("csv response: status=%d type=%s", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	if string(body) != want.CSV() {
		t.Fatalf("service CSV diverges from CLI CSV:\nservice:\n%s\ncli:\n%s", body, want.CSV())
	}

	// Accept-header negotiation must reach the same encoder as ?format=csv.
	respAccept, bodyAccept := get(t, ts, "/v1/tables/1", map[string]string{"Accept": "text/csv"})
	if respAccept.StatusCode != 200 || string(bodyAccept) != want.CSV() {
		t.Fatalf("Accept: text/csv negotiation diverges (status %d)", respAccept.StatusCode)
	}

	wantJSON, err := want.JSON()
	if err != nil {
		t.Fatal(err)
	}
	respJSON, bodyJSON := get(t, ts, "/v1/tables/1", nil)
	if respJSON.StatusCode != 200 || resp.Header.Get("Etag") == "" {
		t.Fatalf("json response: status=%d", respJSON.StatusCode)
	}
	if string(bodyJSON) != string(wantJSON) {
		t.Fatalf("service JSON diverges from CLI JSON:\n%s\nvs\n%s", bodyJSON, wantJSON)
	}
}

func TestEndpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs single-workload sweeps")
	}
	srv := serve.New(serve.Config{Options: testOptions(), Logger: quietLog})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/healthz", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), `"status": "ok"`) {
		t.Fatalf("healthz = %d %s", resp.StatusCode, body)
	}

	resp, body = get(t, ts, "/v1/workloads", nil)
	var wl struct {
		Workloads []struct {
			Name    string  `json:"name"`
			Class   string  `json:"class"`
			InputGB float64 `json:"input_gb"`
		} `json:"workloads"`
	}
	if err := json.Unmarshal(body, &wl); err != nil {
		t.Fatalf("workloads JSON: %v", err)
	}
	if len(wl.Workloads) != len(core.Registry()) {
		t.Fatalf("workloads = %d, want %d", len(wl.Workloads), len(core.Registry()))
	}
	if resp.Header.Get("Etag") == "" {
		t.Fatal("workloads response missing ETag")
	}
	resp, body = get(t, ts, "/v1/workloads?format=csv", nil)
	if !strings.HasPrefix(string(body), "workload,suite,class,input_gb\n") {
		t.Fatalf("workloads CSV header: %q", string(body)[:50])
	}

	resp, body = get(t, ts, "/v1/workloads/Sort/counters", nil)
	var rec struct {
		Workload string  `json:"workload"`
		IPC      float64 `json:"ipc"`
	}
	if err := json.Unmarshal(body, &rec); err != nil || rec.Workload != "Sort" || rec.IPC <= 0 {
		t.Fatalf("counters JSON = %v %+v (%s)", err, rec, body)
	}
	resp, body = get(t, ts, "/v1/workloads/Sort/counters?format=csv", nil)
	if !strings.HasPrefix(string(body), "workload,ipc,") {
		t.Fatalf("counters CSV header: %q", string(body))
	}

	// Conditional requests revalidate without rendering.
	resp, _ = get(t, ts, "/v1/figures/1", nil)
	tag := resp.Header.Get("Etag")
	if tag == "" || resp.Header.Get("Cache-Control") == "" {
		t.Fatal("figure response missing cache validators")
	}
	if resp.Header.Get("Vary") != "Accept" {
		t.Fatalf("Vary = %q; negotiated responses must vary on Accept", resp.Header.Get("Vary"))
	}
	resp, _ = get(t, ts, "/v1/figures/1", map[string]string{"If-None-Match": tag})
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status = %d, want 304", resp.StatusCode)
	}

	// Prose tables: JSON wraps the text, CSV is refused.
	resp, body = get(t, ts, "/v1/tables/3", nil)
	if resp.StatusCode != 200 || !strings.Contains(string(body), "Table III") {
		t.Fatalf("table 3 JSON = %d %s", resp.StatusCode, body)
	}
	resp, _ = get(t, ts, "/v1/tables/2?format=csv", nil)
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("prose table CSV status = %d, want 406", resp.StatusCode)
	}

	// Bad inputs.
	for path, want := range map[string]int{
		"/v1/figures/13":                http.StatusBadRequest,
		"/v1/tables/4":                  http.StatusBadRequest,
		"/v1/workloads/NoSuch/counters": http.StatusNotFound,
		"/v1/nothing":                   http.StatusNotFound,
	} {
		resp, _ = get(t, ts, path, nil)
		if resp.StatusCode != want {
			t.Errorf("%s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestShutdownCancelsSweeps: after Close, a cold render is cancelled and
// reported as 503 rather than hanging or 500ing.
func TestShutdownCancelsSweeps(t *testing.T) {
	srv := serve.New(serve.Config{Options: testOptions(), Logger: quietLog})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	resp, _ := get(t, ts, "/v1/figures/12", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown status = %d, want 503", resp.StatusCode)
	}
	// Errors must not be storable: a shared cache seeing "public,
	// max-age=86400" on a 503 would serve it long after recovery.
	if resp.Header.Get("Etag") != "" || strings.Contains(resp.Header.Get("Cache-Control"), "public") {
		t.Fatalf("error response carries cache validators: Etag=%q Cache-Control=%q",
			resp.Header.Get("Etag"), resp.Header.Get("Cache-Control"))
	}
}
