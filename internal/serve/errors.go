package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"dcbench/internal/obs"
)

// This file is the v1 error contract: every error response carries a
// stable machine-readable code beside the human-readable message, so
// clients branch on meaning instead of parsing prose. The two 429s are
// the motivating case — "you are over YOUR budget" (quota_exceeded,
// actionable by the caller alone) versus "this worker is saturated"
// (overloaded, actionable by retrying elsewhere or later) — but every
// refusal benefits: a dispatch front-end distinguishing a worker's
// validation 4xx from its saturation, a tenant's SDK mapping codes to
// typed errors, an operator grepping logs by code.
//
// The default body is a JSON envelope
//
//	{"error": {"code": "...", "message": "...", "trace_id": "..."}}
//
// carrying the request's trace id so a client error report names the
// exact server-side timeline. Clients that ask for text/plain (and not
// JSON) get the bare message — curl pipelines and the pre-envelope
// scripts keep working — and either way the code also rides the
// X-Dcs-Error-Code header, so even a HEAD or a text client can branch
// without parsing.

// The stable v1 error codes. New refusals reuse one of these unless they
// are genuinely a new kind of "no"; renaming one is an API break.
const (
	codeBadRequest     = "bad_request"     // 400: malformed body, invalid parameter
	codeUnauthorized   = "unauthorized"    // 401: missing, unknown or revoked API key
	codeNotFound       = "not_found"       // 404: unknown workload, figure, table or job
	codeNotAcceptable  = "not_acceptable"  // 406: no representation in the requested format
	codeConflict       = "conflict"        // 409: config fingerprint mismatch, job not finished
	codeGone           = "gone"            // 410: job cancelled
	codeQuotaExceeded  = "quota_exceeded"  // 429: the tenant's own rate or quota budget is spent
	codeOverloaded     = "overloaded"      // 429: this worker is saturated (-max-inflight)
	codeInternal       = "internal"        // 500: server-side failure; detail is in the log, not the body
	codeNotImplemented = "not_implemented" // 501: transport cannot satisfy the request (no SSE)
	codeShuttingDown   = "shutting_down"   // 503: server is draining; retry elsewhere
)

// errorCodeHeader carries the error code out of band of the body.
const errorCodeHeader = "X-Dcs-Error-Code"

// apiError is one refusal, ready to write. The serve layer's internal
// currency: handlers build these, writeAPIError sends them.
type apiError struct {
	status int
	code   string
	msg    string
}

// writeError writes one error response: the JSON envelope by default,
// the bare message for clients whose Accept prefers text/plain over
// JSON. The request's trace id (when the request was traced) rides both
// the envelope and the server's own log line, tying the two together.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	w.Header().Set(errorCodeHeader, code)
	if wantsPlainError(r) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Content-Type-Options", "nosniff")
		w.WriteHeader(status)
		fmt.Fprintln(w, msg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	body := struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			TraceID string `json:"trace_id,omitempty"`
		} `json:"error"`
	}{}
	body.Error.Code = code
	body.Error.Message = msg
	body.Error.TraceID = obs.From(r.Context()).ID()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

// writeAPIError sends one apiError.
func writeAPIError(w http.ResponseWriter, r *http.Request, e *apiError) {
	writeError(w, r, e.status, e.code, e.msg)
}

// wantsPlainError reports whether the client asked for text over JSON —
// an explicit text/plain in Accept without naming application/json.
// curl's default Accept (*/*) gets the envelope.
func wantsPlainError(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
}

// internalError answers a server-side failure without leaking its
// detail: the error (with the trace id) goes to the server log, the
// client gets a generic envelope naming the trace so an operator can
// find the rest. what labels the log line ("render failed", ...).
func (s *Server) internalError(w http.ResponseWriter, r *http.Request, what string, err error, logArgs ...any) {
	id := obs.From(r.Context()).ID()
	args := append([]any{"err", err}, logArgs...)
	if id != "" {
		args = append(args, "trace", id)
	}
	s.log.Error(what, args...)
	writeError(w, r, http.StatusInternalServerError, codeInternal, internalMsg(id))
}

// internalMsg is the client-facing text of a 500: generic on purpose
// (the bugfix this file rode in on — store and sweep internals were
// leaking verbatim), but naming the trace id when there is one.
func internalMsg(traceID string) string {
	if traceID == "" {
		return "internal error"
	}
	return "internal error (trace " + traceID + ")"
}
