package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/obs"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/tenant"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// This file is the compute side of dcserved: POST /v1/jobs makes any
// dcserved a job worker. A job request is kind-tagged with the store's
// record kinds — "counters" runs one characterization sweep key,
// "cluster" runs one cluster experiment (a Figure 2/5 / Table I cell) —
// and the answer is the store's checksummed, kind-tagged record of the
// result: the same bytes the store persists, so the caller verifies kind,
// key and checksum with the store's own codec and can write the record
// through untouched. New job kinds add a case to buildRunner and a codec
// beside the others in internal/store/wire.go; the dispatch, admission,
// async-lifecycle and observability machinery is kind-agnostic.
//
// By default a job blocks the request until its record is ready (the wire
// contract every dispatch front-end speaks). With ?wait=false or
// "async": true in the body the job instead runs in the background and
// the response is its id — see async.go for the lifecycle endpoints.
//
// POST /v1/sweep is the deprecated spelling of a blocking counters job
// from the era when sweeps were the only kind that dispatched. It stays
// mounted, byte-compatible (same request shape, same response record), so
// old front-ends interoperate with new workers during a rollout.

// JobRequest is the body of POST /v1/jobs. Kind selects the computation
// (store.KindCounters or store.KindCluster) and how Key is decoded: a
// sweep.Key for counters, a workloads.StatsKey for cluster. Warmup is
// meaningful for counters only — the run parameter the key's config
// fingerprint was derived from, so the worker can rebuild the machine
// config and prove it matches before simulating. Async (equivalently the
// ?wait=false query parameter) detaches the job from the request: the
// response is 202 + the job's id instead of its result record. The
// dispatch layer is the intended client, but the contract is plain JSON
// so anything can drive a worker.
type JobRequest struct {
	Kind   string          `json:"kind"`
	Key    json.RawMessage `json:"key"`
	Warmup int64           `json:"warmup,omitempty"`
	Async  bool            `json:"async,omitempty"`
}

// SweepRequest is the body of the deprecated POST /v1/sweep alias — a
// counters job in the PR 4 wire shape.
type SweepRequest struct {
	Key    sweep.Key `json:"key"`
	Warmup int64     `json:"warmup"`
}

// maxJobRequest bounds a compute request body; a job key is a few hundred
// bytes, so anything larger is garbage.
const maxJobRequest = 1 << 20

// The Retry-After hint a saturated worker sends with a 429 is derived
// from real saturation (see retryAfterSeconds) and clamped to this
// window — the same 1s..1m range the dispatch layer's shed demotion
// enforces, so a worker can never ask to be demoted longer than a
// front-end would honour.
const (
	minRetryAfterSeconds = 1
	maxRetryAfterSeconds = 60
)

// serviceEWMAWeight is the moving-average weight of the newest completed
// job in the per-kind service-time estimate: heavy enough to track a
// workload shift within a few jobs, light enough that one outlier does
// not whipsaw the shed hint.
const serviceEWMAWeight = 0.3

// maxActiveJobs bounds async jobs accepted but not yet terminal
// (queued + running): past it, submissions shed like any saturated
// request. Without the bound an async client could queue without limit —
// exactly what admission control exists to refuse.
const maxActiveJobs = 256

// Job guard rails: a key asking for an absurd computation would tie a
// worker up for hours — and under -max-inflight would pin an admission
// slot while legitimate jobs shed — so refuse clearly instead of
// obliging. For cluster jobs the slave count scales the simulated
// hardware and the scale the input bytes; for counters jobs the trace
// length is the cost (maxCounterInstrs is ~1000x the default run, tens
// of seconds of simulation, far above any legitimate sweep).
const (
	maxClusterSlaves = 4096
	maxClusterScale  = 10.0
	maxCounterInstrs = 1_000_000_000
)

// jobError is an HTTP-shaped job failure: the status, stable error code
// and message exactly as the blocking endpoint writes them (async jobs
// store the message).
type jobError struct {
	status int
	code   string
	msg    string
}

// jobRunner is one validated job, ready to admit and execute: exec runs
// the computation under ctx and returns the checksummed record; join
// collects the result of an in-flight or memoized computation for the
// same key without claiming an admission slot (ok=false when there is
// nothing to join — the caller sheds as before). instrs is the job's
// instruction cost for tenant quota accounting (0 for kinds whose cost
// is not instruction-shaped).
type jobRunner struct {
	kind   string
	instrs int64
	exec   func(ctx context.Context) ([]byte, *jobError)
	join   func(ctx context.Context) ([]byte, *jobError, bool)
}

// buildRunner decodes and validates one job request into a runner. All
// request-shape and key-validity errors (bad JSON, unknown workload,
// over-cap trace, fingerprint mismatch) surface here, before any
// admission decision — a bad key answers its 4xx even on a saturated
// worker, and an async submission is refused before a job id is minted.
func (s *Server) buildRunner(req JobRequest) (*jobRunner, *jobError) {
	switch req.Kind {
	case store.KindCounters:
		var key sweep.Key
		if err := json.Unmarshal(req.Key, &key); err != nil {
			return nil, &jobError{http.StatusBadRequest, codeBadRequest, "unreadable counters job key: " + err.Error()}
		}
		return s.counterRunner(key, req.Warmup)
	case store.KindCluster:
		var key workloads.StatsKey
		if err := json.Unmarshal(req.Key, &key); err != nil {
			return nil, &jobError{http.StatusBadRequest, codeBadRequest, "unreadable cluster job key: " + err.Error()}
		}
		return s.clusterRunner(key)
	default:
		return nil, &jobError{http.StatusBadRequest, codeBadRequest, fmt.Sprintf("unknown job kind %q (want %q or %q)",
			req.Kind, store.KindCounters, store.KindCluster)}
	}
}

// internalJobError logs one internal job failure with its trace id and
// returns the client-facing jobError: a generic message naming the
// trace, never the internal error text (the async path stores this
// message verbatim, so the sanitization must happen here, not at the
// write site).
func (s *Server) internalJobError(ctx context.Context, what string, err error, logArgs ...any) *jobError {
	id := obs.From(ctx).ID()
	args := append([]any{"err", err}, logArgs...)
	if id != "" {
		args = append(args, "trace", id)
	}
	s.log.Error(what, args...)
	return &jobError{http.StatusInternalServerError, codeInternal, internalMsg(id)}
}

// counterRunner validates one sweep key and returns its runner.
func (s *Server) counterRunner(key sweep.Key, warmup int64) (*jobRunner, *jobError) {
	wl, err := core.ByName(key.Name)
	if err != nil {
		return nil, &jobError{http.StatusNotFound, codeNotFound, err.Error()}
	}
	// The effective trace length is MaxInstrs, or the profile's own cap
	// when MaxInstrs is zero (the engine's convention; the tracer in turn
	// defaults a zero profile cap to 2M instructions, so zero-everywhere
	// keys are legitimate and bounded). Only an absurdly long explicit
	// length is refused — it would pin an admission slot for hours.
	instrs := key.MaxInstrs
	if instrs <= 0 {
		instrs = key.Profile.MaxInstrs
	}
	if instrs > maxCounterInstrs {
		return nil, &jobError{http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("trace length %d exceeds the %d cap", instrs, int64(maxCounterInstrs))}
	}
	// The worker simulates the paper's machine at the caller's warmup; a
	// fingerprint mismatch means the caller runs a machine this worker
	// cannot rebuild from the request, and wrong-machine counters must
	// never be returned as if they matched.
	cfg := uarch.DefaultConfig()
	cfg.Warmup = warmup
	if got := cfg.Fingerprint(); got != key.ConfigFP {
		return nil, &jobError{http.StatusConflict, codeConflict, fmt.Sprintf(
			"config fingerprint mismatch: default machine at warmup %d is %016x, request wants %016x",
			warmup, got, key.ConfigFP)}
	}
	return &jobRunner{
		kind:   store.KindCounters,
		instrs: instrs,
		exec: func(ctx context.Context) ([]byte, *jobError) {
			// The key's profile is the trace spec (Job's uniqueness
			// contract: name + profile identify the trace; the generator is
			// keyed by name), so the engine's memo key here equals key
			// exactly — which is what makes join able to find it.
			jobs := []sweep.Job{{Name: wl.Name, Profile: key.Profile, Gen: wl.Gen}}
			cs, err := s.engine.Run(ctx, jobs, cfg, key.MaxInstrs, sweep.RunOptions{Workers: 1})
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return nil, &jobError{http.StatusServiceUnavailable, codeShuttingDown, "worker shutting down"}
				}
				return nil, s.internalJobError(ctx, "worker sweep failed", err, "workload", key.Name)
			}
			body, err := store.EncodeCounters(key, cs[0])
			if err != nil {
				return nil, s.internalJobError(ctx, "counters record encode failed", err, "workload", key.Name)
			}
			return body, nil
		},
		join: func(ctx context.Context) ([]byte, *jobError, bool) {
			c, err, ok := s.engine.Join(ctx, key)
			if !ok || err != nil {
				// Nothing in flight, or the joined flight failed: fall back
				// to the shed the caller was heading for anyway.
				return nil, nil, false
			}
			body, err := store.EncodeCounters(key, c)
			if err != nil {
				return nil, s.internalJobError(ctx, "counters record encode failed", err, "workload", key.Name), true
			}
			return body, nil, true
		},
	}, nil
}

// clusterRunner validates one cluster experiment key and returns its
// runner.
func (s *Server) clusterRunner(key workloads.StatsKey) (*jobRunner, *jobError) {
	wl := workloads.ByName(key.Workload)
	if wl == nil {
		return nil, &jobError{http.StatusNotFound, codeNotFound, fmt.Sprintf("unknown cluster workload %q", key.Workload)}
	}
	if key.Slaves < 1 || key.Slaves > maxClusterSlaves {
		return nil, &jobError{http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("cluster slave count %d outside [1, %d]", key.Slaves, maxClusterSlaves)}
	}
	if !(key.Scale > 0) || key.Scale > maxClusterScale {
		return nil, &jobError{http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("cluster scale %g outside (0, %g]", key.Scale, maxClusterScale)}
	}
	return &jobRunner{
		kind: store.KindCluster,
		exec: func(ctx context.Context) ([]byte, *jobError) {
			if err := s.baseCtx.Err(); err != nil {
				return nil, &jobError{http.StatusServiceUnavailable, codeShuttingDown, "worker shutting down"}
			}
			st, err := s.opts.Cluster.DoShared(ctx, key, func(ctx context.Context) (*workloads.Stats, error) {
				// A cluster simulation cannot be stopped mid-run (workload
				// Run takes no context), so cancellation is checked at the
				// threshold: waiters already get out via DoShared.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				env := workloads.NewEnv(key.Slaves, key.Scale, key.Seed)
				return wl.Run(env)
			})
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					return nil, &jobError{http.StatusServiceUnavailable, codeShuttingDown, "worker shutting down"}
				}
				return nil, s.internalJobError(ctx, "worker cluster job failed", err,
					"workload", key.Workload, "slaves", key.Slaves)
			}
			body, err := store.EncodeStats(key, st)
			if err != nil {
				return nil, s.internalJobError(ctx, "cluster record encode failed", err, "workload", key.Workload)
			}
			return body, nil
		},
		join: func(ctx context.Context) ([]byte, *jobError, bool) {
			st, err, ok := s.opts.Cluster.Join(ctx, key)
			if !ok || err != nil {
				return nil, nil, false
			}
			body, err := store.EncodeStats(key, st)
			if err != nil {
				return nil, s.internalJobError(ctx, "cluster record encode failed", err, "workload", key.Workload), true
			}
			return body, nil, true
		},
	}, nil
}

// handleJobs runs one compute job and answers with the checksummed store
// record of the result — or, for an async submission, with the job's id.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequest)).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "unreadable job request: "+err.Error())
		return
	}
	run, je := s.buildRunner(req)
	if je != nil {
		writeJobError(w, r, je)
		return
	}
	if je := s.checkJobQuota(r, run); je != nil {
		writeJobError(w, r, je)
		return
	}
	if req.Async || r.URL.Query().Get("wait") == "false" {
		s.submitAsync(w, r, run)
		return
	}
	s.runBlocking(w, r, run)
}

// checkJobQuota enforces the requesting tenant's cumulative job quotas
// (jobs by kind, simulated instructions) before any admission decision:
// an over-quota tenant is refused 429 quota_exceeded even on an idle
// worker — its budget, not the cluster's capacity, is what ran out.
func (s *Server) checkJobQuota(r *http.Request, run *jobRunner) *jobError {
	tn := tenant.From(r.Context())
	if tn.CheckJob(run.kind, run.instrs) {
		return nil
	}
	return &jobError{http.StatusTooManyRequests, codeQuotaExceeded,
		fmt.Sprintf("tenant %q is over its %s job quota", tn.ID(), run.kind)}
}

// sweepSunset is the /v1/sweep alias's advertised retirement date: far
// enough out for pre-jobs fleets to roll, fixed so clients can plan.
const sweepSunset = "Fri, 01 Jan 2027 00:00:00 GMT"

// handleSweep is the deprecated /v1/sweep alias: the PR 4 counters-only
// compute endpoint, byte-for-byte compatible so old front-ends keep
// working against new workers. Always blocking — the alias predates the
// async lifecycle. Every response advertises the deprecation
// (Deprecation + Sunset headers, RFC 8594 style) and bumps the
// deprecated-requests counter, so a fleet still speaking the alias is
// visible in /metrics before the sunset lands. Migration: POST /v1/jobs
// with {"kind": "counters", "key": <same key>, "warmup": <same warmup>}.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.deprecated.Add(1)
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Sunset", sweepSunset)
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequest)).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "unreadable sweep request: "+err.Error())
		return
	}
	run, je := s.counterRunner(req.Key, req.Warmup)
	if je != nil {
		writeJobError(w, r, je)
		return
	}
	if je := s.checkJobQuota(r, run); je != nil {
		writeJobError(w, r, je)
		return
	}
	s.runBlocking(w, r, run)
}

// writeJobError sends one jobError through the envelope.
func writeJobError(w http.ResponseWriter, r *http.Request, je *jobError) {
	writeError(w, r, je.status, je.code, je.msg)
}

// runBlocking is the classic wire contract: admit (or join, or shed),
// execute under the request's context, answer with the record.
//
// The context is the request's merged with the server's base context:
// a client that hangs up stops paying for its job — its admission slot
// frees and, through the memo's refcounted cancellation, the underlying
// simulation stops once no other caller shares it — and shutdown still
// aborts everything. Coalesced jobs survive any one client's disconnect
// because every sharer holds its own reference on the flight cell.
func (s *Server) runBlocking(w http.ResponseWriter, r *http.Request, run *jobRunner) {
	ctx, cancel := s.jobCtx(r.Context())
	defer cancel()
	release, ok := s.acquireNow(ctx)
	if !ok {
		// Shed-or-join: a saturated worker can still answer a request for
		// a key it is already computing (or has memoized) — joining the
		// in-flight cell costs no slot and no duplicate simulation.
		if body, je, joined := run.join(ctx); joined {
			if je != nil {
				writeJobError(w, r, je)
				return
			}
			s.joined.Add(1)
			writeRecord(w, body)
			return
		}
		s.shedJob(w, r, run.kind)
		return
	}
	defer release()
	start := time.Now()
	body, je := run.exec(ctx)
	dur := time.Since(start)
	s.jobHist.Observe(run.kind, dur)
	if je != nil {
		writeJobError(w, r, je)
		return
	}
	// The quota charge lands on execution, not admission: shed, joined
	// and failed jobs cost the tenant nothing.
	tenant.From(ctx).ChargeJob(run.kind, run.instrs)
	s.observeService(run.kind, dur)
	writeRecord(w, body)
}

// jobCtx derives a compute job's context: the request's cancellation and
// trace, merged with the server's base context so shutdown aborts jobs
// whose clients are still waiting. The returned cancel must be called to
// release the merge.
func (s *Server) jobCtx(reqCtx context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(reqCtx)
	stop := context.AfterFunc(s.baseCtx, cancel)
	return ctx, func() { stop(); cancel() }
}

// acquireNow claims an admission slot without waiting: with -max-inflight
// set, at most that many compute jobs run concurrently and the rest are
// refused (the caller then joins or sheds) rather than queued without
// bound. A slot is never held across a client-paced network read, so a
// stalled client cannot pin one.
func (s *Server) acquireNow(ctx context.Context) (func(), bool) {
	sp := obs.Start(ctx, "admission")
	if s.jobSem != nil {
		select {
		case s.jobSem <- struct{}{}:
		default:
			sp.End("shed", "true")
			return nil, false
		}
	}
	sp.End("shed", "false")
	s.jobsInFlight.Add(1)
	return s.releaseSlot, true
}

// acquireWait claims an admission slot, waiting as long as ctx allows —
// the async path, where a queued job holds no connection open.
func (s *Server) acquireWait(ctx context.Context) (func(), error) {
	if s.jobSem == nil {
		s.jobsInFlight.Add(1)
		return s.releaseSlot, nil
	}
	select {
	case s.jobSem <- struct{}{}:
		s.jobsInFlight.Add(1)
		return s.releaseSlot, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) releaseSlot() {
	s.jobsInFlight.Add(-1)
	if s.jobSem != nil {
		<-s.jobSem
	}
}

// shedJob writes the admission-control 429 — code overloaded, never
// quota_exceeded: this refusal is about the worker's capacity, not the
// caller's budget — with the adaptive Retry-After hint.
func (s *Server) shedJob(w http.ResponseWriter, r *http.Request, kind string) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds(kind)))
	writeError(w, r, http.StatusTooManyRequests, codeOverloaded,
		fmt.Sprintf("worker saturated: %d jobs in flight (-max-inflight)", s.maxInflight))
}

// observeService folds one successful job's duration into the per-kind
// service-time moving average feeding the adaptive Retry-After hint.
// Failures are excluded: they return in milliseconds and would talk the
// estimate down just when the worker is struggling.
func (s *Server) observeService(kind string, d time.Duration) {
	s.svcMu.Lock()
	if cur, ok := s.svcSecs[kind]; ok {
		s.svcSecs[kind] = (1-serviceEWMAWeight)*cur + serviceEWMAWeight*d.Seconds()
	} else {
		s.svcSecs[kind] = d.Seconds()
	}
	s.svcMu.Unlock()
}

// retryAfterSeconds derives the shed hint from real saturation: the
// expected time for the worker to drain its current load of this kind —
// average service time × depth (running + queued jobs) / slots — clamped
// to the 1s..1m window the dispatch layer's shed demotion enforces. A
// worker with no service history yet answers the old fixed hint of 1s;
// a deeply backed-up one asks front-ends to stay away proportionally
// longer instead of inviting a retry storm every second.
func (s *Server) retryAfterSeconds(kind string) int {
	s.svcMu.Lock()
	avg := s.svcSecs[kind]
	s.svcMu.Unlock()
	if avg <= 0 {
		avg = 1
	}
	depth := float64(s.jobsInFlight.Load() + s.queuedJobs.Load())
	if depth < 1 {
		depth = 1
	}
	slots := float64(s.maxInflight)
	if slots < 1 {
		slots = 1
	}
	secs := int(math.Ceil(avg * depth / slots))
	if secs < minRetryAfterSeconds {
		secs = minRetryAfterSeconds
	}
	if secs > maxRetryAfterSeconds {
		secs = maxRetryAfterSeconds
	}
	return secs
}

// writeRecord sends one store record as a job response.
func writeRecord(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}
