package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"dcbench/internal/core"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
)

// SweepRequest is the body of POST /v1/sweep — the compute endpoint that
// makes any dcserved a sweep worker. The key carries the full simulation
// input (workload name, trace profile, config fingerprint, trace length);
// Warmup is the run parameter the fingerprint was derived from, so the
// worker can rebuild the machine config and prove it matches before
// simulating. The dispatch layer is the intended client, but the contract
// is plain JSON so anything can drive a worker.
type SweepRequest struct {
	Key    sweep.Key `json:"key"`
	Warmup int64     `json:"warmup"`
}

// maxSweepRequest bounds the request body; a sweep key is a few hundred
// bytes, so anything larger is garbage.
const maxSweepRequest = 1 << 20

// handleSweep runs one simulation for a remote front-end and answers with
// the checksummed store record of the resulting counters — the same bytes
// the store persists, so the caller verifies key and checksum with the
// store's own codec and can write the result through untouched.
//
// The job runs on the server's engine: concurrent requests for one key
// coalesce into one simulation, results land in the worker's own store
// (when configured), and a worker that itself has a dispatch backend
// forwards misses further down the chain.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSweepRequest)).Decode(&req); err != nil {
		http.Error(w, "unreadable sweep request: "+err.Error(), http.StatusBadRequest)
		return
	}
	wl, err := core.ByName(req.Key.Name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// The worker simulates the paper's machine at the caller's warmup; a
	// fingerprint mismatch means the caller runs a machine this worker
	// cannot rebuild from the request, and wrong-machine counters must
	// never be returned as if they matched.
	cfg := uarch.DefaultConfig()
	cfg.Warmup = req.Warmup
	if got := cfg.Fingerprint(); got != req.Key.ConfigFP {
		http.Error(w, fmt.Sprintf(
			"config fingerprint mismatch: default machine at warmup %d is %016x, request wants %016x",
			req.Warmup, got, req.Key.ConfigFP), http.StatusConflict)
		return
	}
	// The key's profile is the trace spec (Job's uniqueness contract:
	// name + profile identify the trace; the generator is keyed by name),
	// so the engine's memo key here equals req.Key exactly.
	jobs := []sweep.Job{{Name: wl.Name, Profile: req.Key.Profile, Gen: wl.Gen}}
	cs, err := s.engine.Run(s.baseCtx, jobs, cfg, req.Key.MaxInstrs, sweep.RunOptions{Workers: 1})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			http.Error(w, "worker shutting down", http.StatusServiceUnavailable)
			return
		}
		s.log.Error("worker sweep failed", "workload", req.Key.Name, "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := store.EncodeCounters(req.Key, cs[0])
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}
