package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"dcbench/internal/core"
	"dcbench/internal/obs"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

// This file is the compute side of dcserved: POST /v1/jobs makes any
// dcserved a job worker. A job request is kind-tagged with the store's
// record kinds — "counters" runs one characterization sweep key,
// "cluster" runs one cluster experiment (a Figure 2/5 / Table I cell) —
// and the answer is the store's checksummed, kind-tagged record of the
// result: the same bytes the store persists, so the caller verifies kind,
// key and checksum with the store's own codec and can write the record
// through untouched. New job kinds add a case to handleJobs and a codec
// beside the others in internal/store/wire.go; the dispatch, admission
// and observability machinery is kind-agnostic.
//
// POST /v1/sweep is the deprecated spelling of a counters job from the
// era when sweeps were the only kind that dispatched. It stays mounted,
// byte-compatible (same request shape, same response record), so old
// front-ends interoperate with new workers during a rollout.

// JobRequest is the body of POST /v1/jobs. Kind selects the computation
// (store.KindCounters or store.KindCluster) and how Key is decoded: a
// sweep.Key for counters, a workloads.StatsKey for cluster. Warmup is
// meaningful for counters only — the run parameter the key's config
// fingerprint was derived from, so the worker can rebuild the machine
// config and prove it matches before simulating. The dispatch layer is
// the intended client, but the contract is plain JSON so anything can
// drive a worker.
type JobRequest struct {
	Kind   string          `json:"kind"`
	Key    json.RawMessage `json:"key"`
	Warmup int64           `json:"warmup,omitempty"`
}

// SweepRequest is the body of the deprecated POST /v1/sweep alias — a
// counters job in the PR 4 wire shape.
type SweepRequest struct {
	Key    sweep.Key `json:"key"`
	Warmup int64     `json:"warmup"`
}

// maxJobRequest bounds a compute request body; a job key is a few hundred
// bytes, so anything larger is garbage.
const maxJobRequest = 1 << 20

// jobRetryAfterSeconds is the Retry-After hint a saturated worker sends
// with a 429: long enough that a well-behaved front-end stops hammering,
// short enough that a briefly loaded worker rejoins the rotation fast.
const jobRetryAfterSeconds = 1

// Job guard rails: a key asking for an absurd computation would tie a
// worker up for hours — and under -max-inflight would pin an admission
// slot while legitimate jobs shed — so refuse clearly instead of
// obliging. For cluster jobs the slave count scales the simulated
// hardware and the scale the input bytes; for counters jobs the trace
// length is the cost (maxCounterInstrs is ~1000x the default run, tens
// of seconds of simulation, far above any legitimate sweep).
const (
	maxClusterSlaves = 4096
	maxClusterScale  = 10.0
	maxCounterInstrs = 1_000_000_000
)

// admitJob applies the worker's admission control: with -max-inflight set,
// at most that many compute jobs run concurrently and the rest are shed
// with 429 + Retry-After — push-back a front-end feeds into its worker
// ranking — rather than queued without bound. It returns a release func
// and true when the job may run; on false the response is already written.
//
// Admission runs after the request is parsed (a shed costs the worker one
// bounded body parse) but before any compute — crucially, a slot is never
// held across a client-paced network read, so a stalled client cannot pin
// a -max-inflight slot. The known tradeoff: a second front-end asking for
// a key this worker is already computing is shed too, although joining
// the in-flight memo cell would cost no extra compute — it then re-routes
// the key to a non-owner. Letting a request peek the engine's flight
// table before shedding would need a memo-level join-without-running API;
// until then the cost is a duplicated simulation in the (two front-ends,
// same cold key, saturated owner) corner, never a wrong result.
func (s *Server) admitJob(ctx context.Context, w http.ResponseWriter) (func(), bool) {
	sp := obs.Start(ctx, "admission")
	if s.jobSem != nil {
		select {
		case s.jobSem <- struct{}{}:
		default:
			s.shed.Add(1)
			sp.End("shed", "true")
			w.Header().Set("Retry-After", strconv.Itoa(jobRetryAfterSeconds))
			http.Error(w, fmt.Sprintf("worker saturated: %d jobs in flight (-max-inflight)", s.maxInflight),
				http.StatusTooManyRequests)
			return nil, false
		}
	}
	sp.End("shed", "false")
	s.jobsInFlight.Add(1)
	return func() {
		s.jobsInFlight.Add(-1)
		if s.jobSem != nil {
			<-s.jobSem
		}
	}, true
}

// handleJobs runs one compute job for a remote front-end and answers with
// the checksummed store record of the result.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequest)).Decode(&req); err != nil {
		http.Error(w, "unreadable job request: "+err.Error(), http.StatusBadRequest)
		return
	}
	// Each kind decodes its key into a runner; admission is then one
	// shared gate below, so a future kind cannot accidentally bypass
	// -max-inflight (bad keys still answer 400, never 429).
	var run func()
	switch req.Kind {
	case store.KindCounters:
		var key sweep.Key
		if err := json.Unmarshal(req.Key, &key); err != nil {
			http.Error(w, "unreadable counters job key: "+err.Error(), http.StatusBadRequest)
			return
		}
		run = func() { s.runCounterJob(w, r, key, req.Warmup) }
	case store.KindCluster:
		var key workloads.StatsKey
		if err := json.Unmarshal(req.Key, &key); err != nil {
			http.Error(w, "unreadable cluster job key: "+err.Error(), http.StatusBadRequest)
			return
		}
		run = func() { s.runClusterJob(w, r, key) }
	default:
		http.Error(w, fmt.Sprintf("unknown job kind %q (want %q or %q)",
			req.Kind, store.KindCounters, store.KindCluster), http.StatusBadRequest)
		return
	}
	release, ok := s.admitJob(r.Context(), w)
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	run()
	s.jobHist.Observe(req.Kind, time.Since(start))
}

// handleSweep is the deprecated /v1/sweep alias: the PR 4 counters-only
// compute endpoint, byte-for-byte compatible so old front-ends keep
// working against new workers.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxJobRequest)).Decode(&req); err != nil {
		http.Error(w, "unreadable sweep request: "+err.Error(), http.StatusBadRequest)
		return
	}
	release, ok := s.admitJob(r.Context(), w)
	if !ok {
		return
	}
	defer release()
	start := time.Now()
	s.runCounterJob(w, r, req.Key, req.Warmup)
	s.jobHist.Observe(store.KindCounters, time.Since(start))
}

// runCounterJob simulates one sweep key and answers with the checksummed
// counters record.
//
// The job runs on the server's engine: concurrent requests for one key
// coalesce into one simulation, results land in the worker's own store
// (when configured), and a worker that itself has a dispatch backend
// forwards misses further down the chain.
func (s *Server) runCounterJob(w http.ResponseWriter, r *http.Request, key sweep.Key, warmup int64) {
	wl, err := core.ByName(key.Name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	// The effective trace length is MaxInstrs, or the profile's own cap
	// when MaxInstrs is zero (the engine's convention; the tracer in turn
	// defaults a zero profile cap to 2M instructions, so zero-everywhere
	// keys are legitimate and bounded). Only an absurdly long explicit
	// length is refused — it would pin an admission slot for hours.
	instrs := key.MaxInstrs
	if instrs <= 0 {
		instrs = key.Profile.MaxInstrs
	}
	if instrs > maxCounterInstrs {
		http.Error(w, fmt.Sprintf("trace length %d exceeds the %d cap", instrs, int64(maxCounterInstrs)),
			http.StatusBadRequest)
		return
	}
	// The worker simulates the paper's machine at the caller's warmup; a
	// fingerprint mismatch means the caller runs a machine this worker
	// cannot rebuild from the request, and wrong-machine counters must
	// never be returned as if they matched.
	cfg := uarch.DefaultConfig()
	cfg.Warmup = warmup
	if got := cfg.Fingerprint(); got != key.ConfigFP {
		http.Error(w, fmt.Sprintf(
			"config fingerprint mismatch: default machine at warmup %d is %016x, request wants %016x",
			warmup, got, key.ConfigFP), http.StatusConflict)
		return
	}
	// The key's profile is the trace spec (Job's uniqueness contract:
	// name + profile identify the trace; the generator is keyed by name),
	// so the engine's memo key here equals key exactly.
	jobs := []sweep.Job{{Name: wl.Name, Profile: key.Profile, Gen: wl.Gen}}
	// Base context for cancellation (coalesced jobs survive any one
	// client's disconnect; shutdown still aborts them), the request's
	// trace for observability — the worker-side spans of a dispatched job
	// land in a trace carrying the front-end's ID.
	ctx := obs.With(s.baseCtx, obs.From(r.Context()))
	cs, err := s.engine.Run(ctx, jobs, cfg, key.MaxInstrs, sweep.RunOptions{Workers: 1})
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			http.Error(w, "worker shutting down", http.StatusServiceUnavailable)
			return
		}
		s.log.Error("worker sweep failed", "workload", key.Name, "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := store.EncodeCounters(key, cs[0])
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRecord(w, body)
}

// runClusterJob runs one cluster experiment — a (workload, slaves, scale,
// seed) cell of the Figure 2/5 matrix — and answers with the checksummed
// cluster record. The run goes through the server's cluster cache, so
// concurrent requests for one key coalesce and the result lands in the
// worker's own store; unlike counters there is no machine fingerprint to
// verify — the key alone fully determines the simulation.
func (s *Server) runClusterJob(w http.ResponseWriter, r *http.Request, key workloads.StatsKey) {
	wl := workloads.ByName(key.Workload)
	if wl == nil {
		http.Error(w, fmt.Sprintf("unknown cluster workload %q", key.Workload), http.StatusNotFound)
		return
	}
	if key.Slaves < 1 || key.Slaves > maxClusterSlaves {
		http.Error(w, fmt.Sprintf("cluster slave count %d outside [1, %d]", key.Slaves, maxClusterSlaves),
			http.StatusBadRequest)
		return
	}
	if !(key.Scale > 0) || key.Scale > maxClusterScale {
		http.Error(w, fmt.Sprintf("cluster scale %g outside (0, %g]", key.Scale, maxClusterScale),
			http.StatusBadRequest)
		return
	}
	if err := s.baseCtx.Err(); err != nil {
		http.Error(w, "worker shutting down", http.StatusServiceUnavailable)
		return
	}
	st, err := s.opts.Cluster.Do(obs.With(s.baseCtx, obs.From(r.Context())), key, func() (*workloads.Stats, error) {
		env := workloads.NewEnv(key.Slaves, key.Scale, key.Seed)
		return wl.Run(env)
	})
	if err != nil {
		s.log.Error("worker cluster job failed", "workload", key.Workload, "slaves", key.Slaves, "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	body, err := store.EncodeStats(key, st)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeRecord(w, body)
}

// writeRecord sends one store record as a job response.
func writeRecord(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}
