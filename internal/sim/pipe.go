package sim

// Pipe models a serial bandwidth resource such as a disk or a NIC.
// Transfers are serviced FIFO at a fixed byte rate plus a fixed per-op
// latency; concurrent transfers queue behind one another, which yields the
// classic saturation behaviour of a single device without per-tick
// simulation.
type Pipe struct {
	eng       *Engine
	bytesPS   float64 // service rate, bytes per second
	latency   float64 // fixed per-operation latency, seconds
	busyUntil float64

	// Counters for reporting.
	Ops   int64
	Bytes int64
}

// NewPipe creates a pipe with the given bandwidth (bytes/second) and fixed
// per-operation latency (seconds).
func NewPipe(e *Engine, bytesPerSecond, latency float64) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{eng: e, bytesPS: bytesPerSecond, latency: latency}
}

// Bandwidth returns the pipe's service rate in bytes per second.
func (pp *Pipe) Bandwidth() float64 { return pp.bytesPS }

// finish computes the completion time of a transfer of n bytes submitted
// now, updating the queue tail and counters.
func (pp *Pipe) finish(n int64) float64 {
	start := pp.busyUntil
	if pp.eng.now > start {
		start = pp.eng.now
	}
	dur := pp.latency + float64(n)/pp.bytesPS
	pp.busyUntil = start + dur
	pp.Ops++
	pp.Bytes += n
	return pp.busyUntil
}

// Transfer moves n bytes through the pipe, blocking the process until the
// transfer completes.
func (pp *Pipe) Transfer(p *Process, n int64) {
	p.SleepUntil(pp.finish(n))
}

// TransferAsync schedules a transfer of n bytes and invokes fn when it
// completes, without blocking a process.
func (pp *Pipe) TransferAsync(n int64, fn func()) {
	pp.eng.At(pp.finish(n), fn)
}

// BusyUntil reports the time at which the pipe drains, for tests.
func (pp *Pipe) BusyUntil() float64 { return pp.busyUntil }
