package sim

import "testing"

func BenchmarkEventLoop(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
	}
	b.ResetTimer()
	e.Run()
}

func BenchmarkProcessSwitch(b *testing.B) {
	e := NewEngine()
	n := b.N
	e.Go(func(p *Process) {
		for i := 0; i < n; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	e.Run()
}

func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkZipf(b *testing.B) {
	r := NewRNG(1)
	z := NewZipf(r, 4096, 1.05)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
