package sim

import "math"

// RNG is a small, fast, deterministic xorshift64* generator. It is used
// throughout the simulator instead of math/rand so that results are stable
// across Go releases and independent of global seeding.
type RNG struct {
	state    uint64
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed (zero is remapped, as the
// xorshift state must be nonzero).
func NewRNG(seed uint64) *RNG {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate via the polar Box-Muller
// transform (one value per call; the spare is cached).
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			m := math.Sqrt(-2 * math.Log(s) / s)
			r.spare, r.hasSpare = v*m, true
			return u * m
		}
	}
}

// Exp returns an exponential variate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf returns a Zipf-distributed rank in [0, n) with exponent s, using
// inverse-CDF sampling over a precomputed table. Build the table once with
// NewZipf for repeated draws.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf constructs a Zipf sampler over n ranks with exponent s > 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: Zipf over non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws a rank in [0, len(cdf)).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
