// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel has two layers. The lower layer is a classic event loop: a
// virtual clock and a priority queue of timestamped callbacks (Engine.At,
// Engine.After, Engine.Run). The upper layer is a cooperative process model
// in the style of SimPy: Engine.Go starts a goroutine that may block on
// virtual time (Process.Sleep), counted resources (Resource.Acquire) and
// bandwidth pipes (Pipe.Transfer). Exactly one goroutine — either the engine
// or a single process — runs at any instant, so simulations are fully
// deterministic regardless of GOMAXPROCS.
package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Ties on time are broken by insertion
// sequence so the execution order is deterministic.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the pending event set.
// The zero value is not usable; construct with NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	events eventHeap

	// yield is the control-transfer channel for the process layer: a
	// process hands control back to the engine by sending on it.
	yield   chan struct{}
	nProcs  int // live processes, for deadlock detection
	blocked int // processes blocked on a resource (not on an event)
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{yield: make(chan struct{})}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Pending reports the number of scheduled events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it indicates a bug in the model, not a recoverable condition.
func (e *Engine) At(t float64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, &event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) { e.At(e.now+d, fn) }

// Run executes events in timestamp order until none remain.
// It panics if live processes remain blocked with no pending events
// (a deadlock in the simulated system).
func (e *Engine) Run() {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	if e.nProcs > 0 {
		panic(fmt.Sprintf("sim: deadlock: %d process(es) blocked with no pending events", e.nProcs))
	}
}

// RunUntil executes events with timestamps <= t, then sets the clock to t.
func (e *Engine) RunUntil(t float64) {
	for len(e.events) > 0 && e.events[0].at <= t {
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	if t > e.now {
		e.now = t
	}
}
