package sim

// Resource is a counted FIFO resource (e.g. CPU cores, task slots).
// Acquire blocks the calling process until a unit is free; units are
// granted strictly in request order.
type Resource struct {
	eng      *Engine
	capacity int
	inUse    int
	waiters  []*Process

	// Busy accumulates unit-seconds of utilisation for reporting.
	Busy      float64
	lastStamp float64
}

// NewResource creates a resource with the given number of units.
func NewResource(e *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: e, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

func (r *Resource) stamp() {
	r.Busy += float64(r.inUse) * (r.eng.now - r.lastStamp)
	r.lastStamp = r.eng.now
}

// Acquire blocks p until a unit is available and takes it.
func (r *Resource) Acquire(p *Process) {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.block()
	// The releaser incremented inUse on our behalf before waking us.
}

// TryAcquire takes a unit if one is immediately available.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.stamp()
		r.inUse++
		return true
	}
	return false
}

// Release returns a unit, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	r.stamp()
	r.inUse--
	if r.inUse < 0 {
		panic("sim: resource released more than acquired")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.inUse++ // transfer the unit to next before it runs
		r.eng.After(0, func() { next.resume() })
	}
}

// Utilisation returns mean busy units over elapsed time, in [0, capacity].
func (r *Resource) Utilisation() float64 {
	r.stamp()
	if r.eng.now == 0 {
		return 0
	}
	return r.Busy / r.eng.now
}

// BusySeconds returns accumulated unit-seconds of utilisation.
func (r *Resource) BusySeconds() float64 {
	r.stamp()
	return r.Busy
}
