package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(3, func() { got = append(got, 3) })
	e.At(1, func() { got = append(got, 1) })
	e.At(2, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if e.Now() != 3 {
		t.Fatalf("Now() = %v, want 3", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("same-time events ran out of order: %v", got)
		}
	}
}

func TestEngineAfterNesting(t *testing.T) {
	e := NewEngine()
	var times []float64
	e.At(1, func() {
		e.After(2, func() { times = append(times, e.Now()) })
	})
	e.Run()
	if len(times) != 1 || times[0] != 3 {
		t.Fatalf("nested After fired at %v, want [3]", times)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e := NewEngine()
	e.At(5, func() { e.At(1, func() {}) })
	e.Run()
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	ran := 0
	e.At(1, func() { ran++ })
	e.At(10, func() { ran++ })
	e.RunUntil(5)
	if ran != 1 {
		t.Fatalf("ran = %d, want 1", ran)
	}
	if e.Now() != 5 {
		t.Fatalf("Now() = %v, want 5", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestProcessSleep(t *testing.T) {
	e := NewEngine()
	var trace []float64
	e.Go(func(p *Process) {
		p.Sleep(1)
		trace = append(trace, p.Now())
		p.Sleep(2.5)
		trace = append(trace, p.Now())
	})
	e.Run()
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3.5 {
		t.Fatalf("trace = %v, want [1 3.5]", trace)
	}
}

func TestProcessInterleaving(t *testing.T) {
	e := NewEngine()
	var order []string
	e.Go(func(p *Process) {
		p.Sleep(2)
		order = append(order, "a")
	})
	e.Go(func(p *Process) {
		p.Sleep(1)
		order = append(order, "b")
	})
	e.Run()
	if len(order) != 2 || order[0] != "b" || order[1] != "a" {
		t.Fatalf("order = %v, want [b a]", order)
	}
}

func TestResourceFIFOAndBlocking(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Go(func(p *Process) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(1)
			r.Release()
		})
	}
	e.Run()
	if e.Now() != 3 {
		t.Fatalf("serialised makespan = %v, want 3", e.Now())
	}
	for i := range order {
		if order[i] != i {
			t.Fatalf("grant order = %v, want FIFO", order)
		}
	}
}

func TestResourceParallelism(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	for i := 0; i < 4; i++ {
		e.Go(func(p *Process) {
			r.Acquire(p)
			p.Sleep(1)
			r.Release()
		})
	}
	e.Run()
	if e.Now() != 2 {
		t.Fatalf("4 unit jobs on 2 units took %v, want 2", e.Now())
	}
	if r.InUse() != 0 {
		t.Fatalf("resource left in use: %d", r.InUse())
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire should fail")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestPipeSerialisation(t *testing.T) {
	e := NewEngine()
	pipe := NewPipe(e, 100, 0) // 100 B/s
	var done []float64
	for i := 0; i < 2; i++ {
		e.Go(func(p *Process) {
			pipe.Transfer(p, 100) // 1 s of service each
			done = append(done, p.Now())
		})
	}
	e.Run()
	if len(done) != 2 || done[0] != 1 || done[1] != 2 {
		t.Fatalf("completion times = %v, want [1 2]", done)
	}
	if pipe.Ops != 2 || pipe.Bytes != 200 {
		t.Fatalf("counters = %d ops %d bytes, want 2/200", pipe.Ops, pipe.Bytes)
	}
}

func TestPipeLatency(t *testing.T) {
	e := NewEngine()
	pipe := NewPipe(e, 1000, 0.5)
	var end float64
	e.Go(func(p *Process) {
		pipe.Transfer(p, 500)
		end = p.Now()
	})
	e.Run()
	if end != 1.0 { // 0.5 latency + 0.5 transfer
		t.Fatalf("end = %v, want 1.0", end)
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEngine()
	var wg WaitGroup
	wg.Add(3)
	finished := false
	for i := 1; i <= 3; i++ {
		d := float64(i)
		e.Go(func(p *Process) {
			p.Sleep(d)
			wg.Done(e)
		})
	}
	e.Go(func(p *Process) {
		wg.Wait(p)
		finished = true
		if p.Now() != 3 {
			t.Errorf("wait released at %v, want 3", p.Now())
		}
	})
	e.Run()
	if !finished {
		t.Fatal("waiter never released")
	}
}

func TestDeadlockDetection(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEngine()
	r := NewResource(e, 1)
	e.Go(func(p *Process) {
		r.Acquire(p)
		r.Acquire(p) // self-deadlock: never released
	})
	e.Run()
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	if err := quick.Check(func(seed uint64, n uint16) bool {
		m := int(n%1000) + 1
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGNormalMoments(t *testing.T) {
	r := NewRNG(7)
	n := 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if mean < -0.02 || mean > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if variance < 0.95 || variance > 1.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(r, 1000, 1.0)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[99] {
		t.Fatalf("zipf not skewed: rank0=%d rank99=%d", counts[0], counts[99])
	}
	// Rank 0 under s=1 over 1000 ranks should take roughly 1/H(1000) ~ 13%.
	frac := float64(counts[0]) / 100000
	if frac < 0.08 || frac > 0.20 {
		t.Fatalf("zipf rank0 fraction = %v, want ~0.13", frac)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(50)
		seen := make([]bool, 50)
		for _, v := range p {
			if v < 0 || v >= 50 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}
