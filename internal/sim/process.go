package sim

// Process is a cooperative simulated thread of control. A process runs in
// its own goroutine but the engine guarantees mutual exclusion: control is
// explicitly handed between the engine and at most one process at a time.
type Process struct {
	eng  *Engine
	wake chan struct{}
}

// Engine returns the engine the process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.eng.now }

// Go starts fn as a simulated process at the current virtual time.
// fn runs when the engine reaches the start event; it may call the blocking
// Process methods. The process ends when fn returns.
func (e *Engine) Go(fn func(p *Process)) {
	p := &Process{eng: e, wake: make(chan struct{})}
	e.nProcs++
	e.After(0, func() {
		go func() {
			fn(p)
			p.eng.nProcs--
			p.eng.yield <- struct{}{}
		}()
		<-e.yield
	})
}

// resume transfers control from the engine to the process and waits for it
// to block again (or finish). Must only be called from engine context.
func (p *Process) resume() {
	p.wake <- struct{}{}
	<-p.eng.yield
}

// block transfers control from the process back to the engine and waits to
// be resumed. Must only be called from process context.
func (p *Process) block() {
	p.eng.yield <- struct{}{}
	<-p.wake
}

// Sleep suspends the process for d seconds of virtual time.
func (p *Process) Sleep(d float64) {
	if d < 0 {
		d = 0
	}
	p.eng.After(d, func() { p.resume() })
	p.block()
}

// SleepUntil suspends the process until absolute virtual time t.
// If t is in the past it yields without advancing time.
func (p *Process) SleepUntil(t float64) {
	if t < p.eng.now {
		t = p.eng.now
	}
	p.eng.At(t, func() { p.resume() })
	p.block()
}

// WaitGroup counts outstanding simulated activities. Unlike sync.WaitGroup
// it is engine-synchronized: Wait blocks the calling process in virtual
// time until the count reaches zero.
type WaitGroup struct {
	n       int
	waiters []*Process
}

// Add increments the counter by delta.
func (wg *WaitGroup) Add(delta int) { wg.n += delta }

// Done decrements the counter, waking all waiters when it reaches zero.
// Must be called from engine or process context.
func (wg *WaitGroup) Done(e *Engine) {
	wg.n--
	if wg.n < 0 {
		panic("sim: WaitGroup counter negative")
	}
	if wg.n == 0 {
		ws := wg.waiters
		wg.waiters = nil
		for _, w := range ws {
			w := w
			e.After(0, func() { w.resume() })
		}
	}
}

// Wait blocks the process until the counter is zero.
func (wg *WaitGroup) Wait(p *Process) {
	if wg.n == 0 {
		return
	}
	wg.waiters = append(wg.waiters, p)
	p.block()
}
