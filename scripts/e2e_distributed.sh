#!/usr/bin/env bash
# e2e_distributed.sh — end-to-end harness for the distributed jobs path,
# run by the e2e-distributed CI job and usable locally:
#
#   ./scripts/e2e_distributed.sh
#
# It builds the real binaries, then walks the acceptance criteria:
#
#   1. a single-process dcserved renders every /v1 endpoint (the baseline);
#   2. a worker + front-end pair serves the same endpoints byte-identically
#      — Figures 2/5 and Table I included, so cluster experiments dispatch
#      too — with every counter key AND every cluster cell answered
#      remotely (no fallbacks of either kind); a traced cold request's
#      X-Dcs-Trace ID shows up in BOTH processes' /debug/traces rings with
#      spans covering the job's phases, the worker's per-kind job-latency
#      histogram counts agree with the front-end's per-kind dispatch
#      counters, and both trace rings are dumped to $TRACES_OUT (CI uploads
#      it beside the BENCH_* artifacts);
#   3. a restarted front-end over the same store — its worker now dark —
#      serves the same bytes again with zero dispatches and zero
#      re-simulation of either kind (everything from the write-through
#      store);
#   4. a worker started with -max-inflight 1 admits concurrent jobs
#      through its one slot, and any request it sheds answers 429 with a
#      Retry-After hint;
#   5. the async job lifecycle end to end: POST /v1/jobs?wait=false
#      answers 202 + a job id, the job's history walks >= 3 distinct
#      states, its result matches the blocking endpoint's bytes, the SSE
#      stream replays the transitions and closes itself, and DELETE on a
#      job mid-simulation lands it in state "cancelled", frees the
#      admission slot, and leaves no partial record in the store;
#   6. the multi-tenant front door across the dispatch hop: a keyed
#      front-end over an unkeyed worker answers 401 unauthorized to
#      unkeyed callers, admits keyed ones, rate-limits a burst-1 tenant
#      with 429 quota_exceeded + Retry-After (distinguishable from the
#      admission layer's 429 by error code), surfaces per-tenant usage in
#      its own /healthz AND attributes dispatched jobs to the originating
#      tenant in the worker's /metrics (the X-Dcs-Tenant hop), serves the
#      admin usage report only to the bootstrap token, and advertises the
#      /v1/sweep deprecation via the Deprecation/Sunset headers;
#   7. store replication survives losing a record's owner: three replicated
#      workers, one counters job warmed through a front-end, the owner
#      (the only node that simulated) killed — a fresh front-end spreading
#      reads over the full set (-dispatch-replicas 3) answers the same job
#      byte-identically from a survivor with zero re-simulation and zero
#      dispatch fallbacks, and a brand-new empty node pointed at the
#      survivors converges via anti-entropy (pulled records, no writes).
#      Timings land in $BENCH_REPLICA_OUT (push fan-out, failover request,
#      anti-entropy convergence), uploaded by CI beside the BENCH_*
#      artifacts.
set -euo pipefail

cd "$(dirname "$0")/.."
WORK=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null; wait 2>/dev/null; rm -rf "$WORK"' EXIT

# Small, deterministic run parameters shared by every server and the client.
FLAGS=(-scale 0.004 -instrs 30000 -warmup 10000)
BASE_PORT=18470 WORKER_PORT=18471 FRONT_PORT=18472 FRONT2_PORT=18473 SHED_PORT=18474 ASYNC_PORT=18477 DEAD_PORT=18479
WORKER_DEBUG_PORT=18475 FRONT_DEBUG_PORT=18476
TWORKER_PORT=18480 TFRONT_PORT=18481 TADMIN_PORT=18482
RA_PORT=18483 RB_PORT=18484 RC_PORT=18485 RFRONT_PORT=18486 RFRONT2_PORT=18487 RNEW_PORT=18488
TRACES_OUT=${TRACES_OUT:-$WORK/TRACES_e2e.json}
BENCH_REPLICA_OUT=${BENCH_REPLICA_OUT:-$WORK/BENCH_replica.json}

echo "== build"
go build -o "$WORK/bin/" ./cmd/...

ENDPOINTS=()
for i in $(seq 1 12); do ENDPOINTS+=("/v1/figures/$i"); done
ENDPOINTS+=("/v1/figures/3?format=csv" "/v1/tables/1" "/v1/tables/1?format=csv"
  "/v1/tables/2" "/v1/tables/3" "/v1/workloads" "/v1/workloads/Sort/counters")

wait_ready() { # port
  for _ in $(seq 1 100); do
    curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.2
  done
  echo "server on port $1 never became ready" >&2
  return 1
}

fetch_all() { # port outdir
  mkdir -p "$2"
  local n=0
  for ep in "${ENDPOINTS[@]}"; do
    curl -sf "http://127.0.0.1:$1$ep" -o "$2/$n.body"
    n=$((n + 1))
  done
}

healthz_field() { # port python-expr over parsed healthz JSON bound to h
  curl -sf "http://127.0.0.1:$1/healthz" | python3 -c "
import json, sys
h = json.load(sys.stdin)
print($2)"
}

# per_kind helper: the dispatch block's per-kind counter for one job kind.
kind_field() { # port kind field
  healthz_field "$1" "next(k for k in h['store']['dispatch']['per_kind'] if k['kind'] == '$2')['$3']"
}

assert_eq() { # label got want
  if [ "$2" != "$3" ]; then
    echo "FAIL: $1: got $2, want $3" >&2
    exit 1
  fi
  echo "   ok: $1 = $2"
}

echo "== 1. single-process baseline"
"$WORK/bin/dcserved" -addr "127.0.0.1:$BASE_PORT" -store "$WORK/base.store" "${FLAGS[@]}" 2>"$WORK/base.log" &
BASE_PID=$!
wait_ready $BASE_PORT
fetch_all $BASE_PORT "$WORK/baseline"
kill $BASE_PID 2>/dev/null || true
wait $BASE_PID 2>/dev/null || true

echo "== 2. worker + front-end: both job kinds dispatch"
"$WORK/bin/dcserved" -addr "127.0.0.1:$WORKER_PORT" -store "$WORK/worker.store" \
  -debug-addr "127.0.0.1:$WORKER_DEBUG_PORT" "${FLAGS[@]}" 2>"$WORK/worker.log" &
WORKER_PID=$!
wait_ready $WORKER_PORT
"$WORK/bin/dcserved" -addr "127.0.0.1:$FRONT_PORT" -store "$WORK/front.store" \
  -debug-addr "127.0.0.1:$FRONT_DEBUG_PORT" \
  -workers "127.0.0.1:$WORKER_PORT" "${FLAGS[@]}" 2>"$WORK/front.log" &
FRONT_PID=$!
wait_ready $FRONT_PORT
# A cold counters request under a caller-chosen trace ID, fired while the
# stores are empty so it must dispatch: the ID has to come back in the
# response header and appear in both processes' trace rings below.
TRACE_ID=e2e0123456789abc
curl -sf -H "X-Dcs-Trace: $TRACE_ID" -D "$WORK/traced.hdr" -o /dev/null \
  "http://127.0.0.1:$FRONT_PORT/v1/workloads/Sort/counters"
grep -qi "^X-Dcs-Trace: $TRACE_ID" "$WORK/traced.hdr" \
  || { echo "FAIL: response did not echo the inbound trace ID" >&2; exit 1; }
echo "   ok: response echoed X-Dcs-Trace: $TRACE_ID"
fetch_all $FRONT_PORT "$WORK/dist"
diff -r "$WORK/baseline" "$WORK/dist" \
  || { echo "FAIL: front-end bytes diverge from single-process dcserved" >&2; exit 1; }
echo "   ok: ${#ENDPOINTS[@]} endpoints byte-identical (Figures 2/5 + Table I included)"
assert_eq "front-end fallbacks" "$(healthz_field $FRONT_PORT "h['store']['dispatch']['fallbacks']")" 0
REMOTE_HITS=$(healthz_field $FRONT_PORT "h['store']['dispatch']['remote_hits']")
[ "$REMOTE_HITS" -gt 0 ] || { echo "FAIL: front-end never used its worker" >&2; exit 1; }
echo "   ok: remote_hits = $REMOTE_HITS"
COUNTER_HITS=$(kind_field $FRONT_PORT counters remote_hits)
CLUSTER_HITS=$(kind_field $FRONT_PORT cluster remote_hits)
[ "$COUNTER_HITS" -gt 0 ] || { echo "FAIL: no counter jobs reached the worker" >&2; exit 1; }
[ "$CLUSTER_HITS" -gt 0 ] || { echo "FAIL: no cluster jobs reached the worker (Figure 2/5 ran on the front-end)" >&2; exit 1; }
echo "   ok: per-kind remote hits: counters = $COUNTER_HITS, cluster = $CLUSTER_HITS"
assert_eq "cluster-job fallbacks" "$(kind_field $FRONT_PORT cluster fallbacks)" 0
# The worker runs with the default trace cache: every counter job it
# simulated captured its workload's trace, and the counters surface in
# its /healthz store block.
TC_CAPTURES=$(healthz_field $WORKER_PORT "h['store']['trace_cache']['captures']")
[ "$TC_CAPTURES" -gt 0 ] || { echo "FAIL: worker trace cache captured nothing" >&2; exit 1; }
TC_HITS=$(healthz_field $WORKER_PORT "h['store']['trace_cache']['hits']")
echo "   ok: worker trace cache: captures = $TC_CAPTURES, hits = $TC_HITS"

# Trace propagation: the traced request's ID must be in BOTH rings — the
# front-end's inbound trace and the worker-side trace of the dispatched
# job — with the phases each side owns.
trace_phases() { # debug-port trace-id -> space-joined sorted distinct span names
  curl -sf "http://127.0.0.1:$1/debug/traces?limit=512" | python3 -c "
import json, sys
doc = json.load(sys.stdin)
for td in doc['traces']:
    if td['id'] == '$2':
        print(' '.join(sorted({s['name'] for s in td.get('spans', [])})))
        break"
}
FRONT_PHASES=$(trace_phases $FRONT_DEBUG_PORT "$TRACE_ID")
WORKER_PHASES=$(trace_phases $WORKER_DEBUG_PORT "$TRACE_ID")
[ -n "$FRONT_PHASES" ] || { echo "FAIL: front-end ring lacks trace $TRACE_ID" >&2; exit 1; }
[ -n "$WORKER_PHASES" ] \
  || { echo "FAIL: worker ring lacks trace $TRACE_ID (dispatch dropped the ID)" >&2; exit 1; }
echo "   front-end phases: $FRONT_PHASES"
echo "   worker phases:    $WORKER_PHASES"
case " $FRONT_PHASES " in *" dispatch "*) ;; *)
  echo "FAIL: front-end trace has no dispatch span" >&2; exit 1 ;; esac
for p in admission simulate; do
  case " $WORKER_PHASES " in *" $p "*) ;; *)
    echo "FAIL: worker trace has no $p span" >&2; exit 1 ;; esac
done
UNION=$(echo "$FRONT_PHASES $WORKER_PHASES" | tr ' ' '\n' | sort -u | grep -c .)
[ "$UNION" -ge 5 ] || { echo "FAIL: trace covers $UNION distinct phases, want >= 5" >&2; exit 1; }
echo "   ok: trace $TRACE_ID spans both processes, $UNION distinct phases"

# Histogram consistency: every job the front-end counts as a per-kind
# remote hit ran on the worker, where it is one observation in the
# per-kind job-latency histogram.
job_hist_count() { # port kind
  curl -sf "http://127.0.0.1:$1/metrics" \
    | sed -n "s/^dcserved_job_duration_seconds_count{kind=\"$2\"} //p"
}
assert_eq "worker counters histogram _count vs front-end remote hits" \
  "$(job_hist_count $WORKER_PORT counters)" "$COUNTER_HITS"
assert_eq "worker cluster histogram _count vs front-end remote hits" \
  "$(job_hist_count $WORKER_PORT cluster)" "$CLUSTER_HITS"
# The cold-vs-replay latency split is visible in the bucket ladder; leave
# it in the log (and the trace artifact) for eyeballing.
curl -sf "http://127.0.0.1:$WORKER_PORT/metrics" \
  | grep '^dcserved_job_duration_seconds_bucket{kind="counters"' | sed 's/^/   /'

# Dump both rings (newest-first, slowest requests and all their spans
# included) as the run's trace artifact.
curl -sf "http://127.0.0.1:$FRONT_DEBUG_PORT/debug/traces?limit=512" >"$WORK/front_traces.json"
curl -sf "http://127.0.0.1:$WORKER_DEBUG_PORT/debug/traces?limit=512" >"$WORK/worker_traces.json"
python3 -c "
import json
out = {'trace_id': '$TRACE_ID',
       'front': json.load(open('$WORK/front_traces.json')),
       'worker': json.load(open('$WORK/worker_traces.json'))}
json.dump(out, open('$TRACES_OUT', 'w'), indent=2)"
echo "   ok: trace artifact at $TRACES_OUT"

echo "== 3. front-end restart with a dark worker: warm store, no dispatch, no re-simulation"
kill $FRONT_PID $WORKER_PID 2>/dev/null || true
wait $FRONT_PID $WORKER_PID 2>/dev/null || true
"$WORK/bin/dcserved" -addr "127.0.0.1:$FRONT2_PORT" -store "$WORK/front.store" \
  -workers "127.0.0.1:$DEAD_PORT" "${FLAGS[@]}" 2>"$WORK/front2.log" &
wait_ready $FRONT2_PORT
fetch_all $FRONT2_PORT "$WORK/warm"
diff -r "$WORK/baseline" "$WORK/warm" \
  || { echo "FAIL: restarted front-end bytes diverge" >&2; exit 1; }
echo "   ok: restart byte-identical"
assert_eq "restart dispatches" "$(healthz_field $FRONT2_PORT "h['store']['dispatch']['dispatched']")" 0
assert_eq "restart cluster dispatches" "$(kind_field $FRONT2_PORT cluster dispatched)" 0
assert_eq "restart fallbacks" "$(healthz_field $FRONT2_PORT "h['store']['dispatch']['fallbacks']")" 0
STORE_HITS=$(healthz_field $FRONT2_PORT "h['store']['hits']")
[ "$STORE_HITS" -gt 0 ] || { echo "FAIL: restarted front-end never read its store" >&2; exit 1; }
STORE_WRITES=$(healthz_field $FRONT2_PORT "h['store']['writes']")
assert_eq "restart store writes (re-simulations, both kinds)" "$STORE_WRITES" 0
echo "   ok: store hits = $STORE_HITS"

echo "== 4. admission control: a 1-slot worker admits through the slot, sheds with 429 + Retry-After"
# Whether the second concurrent job lands in the slot or is shed depends
# on timing, so assert the invariants rather than a fixed schedule: at
# least one job succeeds, any refusal is a 429 carrying Retry-After, and
# the jobs admission block is exported. (The deterministic saturate-shed-
# release walk is the Go-level TestAdmissionControl.)
"$WORK/bin/dcserved" -addr "127.0.0.1:$SHED_PORT" -store "$WORK/shed.store" -max-inflight 1 \
  "${FLAGS[@]}" 2>"$WORK/shed.log" &
wait_ready $SHED_PORT
# Fire two cluster jobs at the 1-slot worker concurrently; at least one
# must succeed, and any refusal must be a 429 carrying Retry-After.
JOB='{"kind":"cluster","key":{"Workload":"Sort","Slaves":4,"Scale":0.004,"Seed":42}}'
curl -s -o "$WORK/shed1.body" -D "$WORK/shed1.hdr" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "$JOB" \
  "http://127.0.0.1:$SHED_PORT/v1/jobs" >"$WORK/shed1.code" &
C1_PID=$!
curl -s -o "$WORK/shed2.body" -D "$WORK/shed2.hdr" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "$JOB" \
  "http://127.0.0.1:$SHED_PORT/v1/jobs" >"$WORK/shed2.code" &
C2_PID=$!
wait $C1_PID $C2_PID
CODE1=$(cat "$WORK/shed1.code"); CODE2=$(cat "$WORK/shed2.code")
echo "   concurrent job statuses: $CODE1, $CODE2"
case "$CODE1$CODE2" in
  *200*) echo "   ok: at least one job admitted" ;;
  *) echo "FAIL: no job succeeded against the 1-slot worker" >&2; exit 1 ;;
esac
for n in 1 2; do
  if [ "$(cat "$WORK/shed$n.code")" = "429" ]; then
    grep -qi '^Retry-After:' "$WORK/shed$n.hdr" \
      || { echo "FAIL: 429 without Retry-After" >&2; exit 1; }
    echo "   ok: shed response carried Retry-After"
  fi
done
assert_eq "worker max_inflight exported" "$(healthz_field $SHED_PORT "h['jobs']['max_inflight']")" 1

echo "== 5. async lifecycle: 202 submit, state history, SSE, cancel mid-simulation"
# Its own worker on purpose: one slot so the cancelled job provably frees
# it, and no trace cache so the slow job spends its life in "simulating"
# (a shared trace capture deliberately ignores cancellation, which would
# blur the mid-simulation cancel this step exists to prove).
"$WORK/bin/dcserved" -addr "127.0.0.1:$ASYNC_PORT" -store "$WORK/async.store" \
  -max-inflight 1 -trace-cache-bytes 0 "${FLAGS[@]}" 2>"$WORK/async.log" &
wait_ready $ASYNC_PORT

# Counters keys are hand-built here, so the ConfigFP must be the worker's
# own machine fingerprint at this run's -warmup — healthz exports exactly
# that value for this purpose.
CFP=$(healthz_field $ASYNC_PORT "int(h['config_fp'], 16)")
counters_job() { # seed max-instrs -> JobRequest JSON (warmup matches FLAGS)
  echo "{\"kind\":\"counters\",\"warmup\":10000,\"key\":{\"Name\":\"Sort\",\"Profile\":{\"Seed\":$1,\"MaxInstrs\":$2,\"CodeKB\":64,\"HeapMB\":4},\"ConfigFP\":$CFP,\"MaxInstrs\":$2}}"
}

job_field() { # port job-id python-expr over parsed job JSON bound to j
  curl -sf "http://127.0.0.1:$1/v1/jobs/$2" | python3 -c "
import json, sys
j = json.load(sys.stdin)
print($3)"
}

wait_job_state() { # port job-id state... -> 0 once current state is one of them
  local port=$1 id=$2 st
  shift 2
  for _ in $(seq 1 300); do
    st=$(job_field "$port" "$id" "j['state']")
    local want
    for want in "$@"; do
      [ "$st" = "$want" ] && { echo "$st"; return 0; }
    done
    sleep 0.1
  done
  echo "$st"
  return 1
}

# 5a. submit asynchronously: 202, a Location header, and a job id.
CODE=$(curl -s -o "$WORK/submit1.json" -D "$WORK/submit1.hdr" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "$(counters_job 7 40000)" \
  "http://127.0.0.1:$ASYNC_PORT/v1/jobs?wait=false")
assert_eq "async submit status" "$CODE" 202
JOB1=$(python3 -c "import json; print(json.load(open('$WORK/submit1.json'))['id'])")
grep -qi "^Location: /v1/jobs/$JOB1" "$WORK/submit1.hdr" \
  || { echo "FAIL: 202 without a Location header pointing at the job" >&2; exit 1; }
echo "   ok: job $JOB1 accepted with Location header"

# 5b. the job runs to "done" and its history shows the lifecycle: at
# least queued, an execution phase, and the terminal state.
FINAL=$(wait_job_state $ASYNC_PORT "$JOB1" done failed cancelled) \
  || { echo "FAIL: job $JOB1 never reached a terminal state" >&2; exit 1; }
assert_eq "async job final state" "$FINAL" done
DISTINCT=$(job_field $ASYNC_PORT "$JOB1" "len({t['state'] for t in j['history']})")
[ "$DISTINCT" -ge 3 ] \
  || { echo "FAIL: job history has $DISTINCT distinct states, want >= 3" >&2; exit 1; }
echo "   ok: history walked $DISTINCT distinct states:" \
  "$(job_field $ASYNC_PORT "$JOB1" "' '.join(t['state'] for t in j['history'])")"

# 5c. the stored result is byte-identical to the blocking endpoint's
# answer for the same request.
curl -sf "http://127.0.0.1:$ASYNC_PORT/v1/jobs/$JOB1/result" -o "$WORK/async1.result"
curl -sf -X POST -H 'Content-Type: application/json' -d "$(counters_job 7 40000)" \
  "http://127.0.0.1:$ASYNC_PORT/v1/jobs" -o "$WORK/blocking1.result"
cmp -s "$WORK/async1.result" "$WORK/blocking1.result" \
  || { echo "FAIL: async result diverges from the blocking endpoint's bytes" >&2; exit 1; }
echo "   ok: async result byte-identical to blocking POST /v1/jobs"

# 5d. SSE smoke: the stream replays one `event: state` frame per
# transition and closes itself after the terminal state (the job is
# already terminal, so a hang here means the stream never closes).
curl -sN -H 'Accept: text/event-stream' --max-time 10 \
  "http://127.0.0.1:$ASYNC_PORT/v1/jobs/$JOB1" >"$WORK/sse1.txt" \
  || { echo "FAIL: SSE stream did not close after the terminal state" >&2; exit 1; }
SSE_FRAMES=$(grep -c '^event: state' "$WORK/sse1.txt")
[ "$SSE_FRAMES" -ge 3 ] \
  || { echo "FAIL: SSE stream carried $SSE_FRAMES state frames, want >= 3" >&2; exit 1; }
echo "   ok: SSE stream replayed $SSE_FRAMES state frames and closed"

# 5e. cancel mid-simulation: a long job (500M instructions, ~1000x the
# normal run) is cancelled while simulating; it must land in state
# "cancelled", free the worker's only slot, and write nothing.
W0=$(healthz_field $ASYNC_PORT "h['store']['writes']")
CODE=$(curl -s -o "$WORK/submit2.json" -w '%{http_code}' \
  -X POST -H 'Content-Type: application/json' -d "$(counters_job 99 500000000)" \
  "http://127.0.0.1:$ASYNC_PORT/v1/jobs?wait=false")
assert_eq "slow submit status" "$CODE" 202
JOB2=$(python3 -c "import json; print(json.load(open('$WORK/submit2.json'))['id'])")
MID=$(wait_job_state $ASYNC_PORT "$JOB2" simulating) \
  || { echo "FAIL: slow job state is '$MID', never reached simulating" >&2; exit 1; }
CODE=$(curl -s -o "$WORK/cancel2.json" -w '%{http_code}' \
  -X DELETE "http://127.0.0.1:$ASYNC_PORT/v1/jobs/$JOB2")
assert_eq "cancel status" "$CODE" 200
FINAL=$(wait_job_state $ASYNC_PORT "$JOB2" done failed cancelled) \
  || { echo "FAIL: cancelled job never reached a terminal state" >&2; exit 1; }
assert_eq "cancelled job state" "$FINAL" cancelled
for _ in $(seq 1 100); do
  INFLIGHT=$(healthz_field $ASYNC_PORT "h['jobs']['in_flight']")
  [ "$INFLIGHT" = 0 ] && break
  sleep 0.1
done
assert_eq "jobs in flight after cancel (slot freed)" "$INFLIGHT" 0
assert_eq "store writes after cancel (no partial record)" \
  "$(healthz_field $ASYNC_PORT "h['store']['writes']")" "$W0"
assert_eq "cancelled jobs counter" "$(healthz_field $ASYNC_PORT "h['jobs']['cancelled']")" 1
CODE=$(curl -s -o /dev/null -w '%{http_code}' \
  "http://127.0.0.1:$ASYNC_PORT/v1/jobs/$JOB2/result")
assert_eq "cancelled job result status" "$CODE" 410

echo "== 6. multi-tenant front door: keys, rate limits, attribution across the dispatch hop"
cat >"$WORK/keys.json" <<'EOF'
{"keys": [
  {"id": "alice", "secret": "alice-key"},
  {"id": "bob", "secret": "bob-key", "limits": {"rate_per_sec": 0.01, "burst": 1}}
]}
EOF
# An UNKEYED worker under a KEYED front-end: enforcement happens at the
# front door, attribution crosses the hop in the X-Dcs-Tenant header.
"$WORK/bin/dcserved" -addr "127.0.0.1:$TWORKER_PORT" -store "$WORK/tworker.store" \
  "${FLAGS[@]}" 2>"$WORK/tworker.log" &
wait_ready $TWORKER_PORT
"$WORK/bin/dcserved" -addr "127.0.0.1:$TFRONT_PORT" -store "$WORK/tfront.store" \
  -keys-file "$WORK/keys.json" -admin-addr "127.0.0.1:$TADMIN_PORT" -admin-token boot-token \
  -workers "127.0.0.1:$TWORKER_PORT" "${FLAGS[@]}" 2>"$WORK/tfront.log" &
wait_ready $TFRONT_PORT   # the probe needs no key: LBs keep working

error_code() { # headers-file -> the X-Dcs-Error-Code header value
  sed -n 's/^[Xx]-[Dd]cs-[Ee]rror-[Cc]ode: *//p' "$1" | tr -d '\r'
}

# 6a. no key -> 401 unauthorized, as a machine-readable envelope.
CODE=$(curl -s -o "$WORK/unauth.json" -D "$WORK/unauth.hdr" -w '%{http_code}' \
  "http://127.0.0.1:$TFRONT_PORT/v1/workloads")
assert_eq "unkeyed request status" "$CODE" 401
assert_eq "unkeyed error code header" "$(error_code "$WORK/unauth.hdr")" unauthorized
assert_eq "unkeyed envelope code" \
  "$(python3 -c "import json; print(json.load(open('$WORK/unauth.json'))['error']['code'])")" unauthorized

# 6b. alice's key admits her — including a cold compute job, which
# dispatches to the unkeyed worker carrying her identity.
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer alice-key' \
  "http://127.0.0.1:$TFRONT_PORT/v1/workloads")
assert_eq "alice keyed request status" "$CODE" 200
TCFP=$(healthz_field $TFRONT_PORT "int(h['config_fp'], 16)")
TJOB="{\"kind\":\"counters\",\"warmup\":10000,\"key\":{\"Name\":\"Sort\",\"Profile\":{\"Seed\":21,\"MaxInstrs\":40000,\"CodeKB\":64,\"HeapMB\":4},\"ConfigFP\":$TCFP,\"MaxInstrs\":40000}}"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H 'Authorization: Bearer alice-key' \
  -X POST -H 'Content-Type: application/json' -d "$TJOB" \
  "http://127.0.0.1:$TFRONT_PORT/v1/jobs")
assert_eq "alice dispatched job status" "$CODE" 200

# 6c. bob's burst-1 bucket: the first request passes (the X-Dcs-Api-Key
# spelling), the second answers 429 quota_exceeded with Retry-After —
# the same status as admission shed but a different code, so clients can
# tell "slow down" from "worker full".
CODE=$(curl -s -o /dev/null -w '%{http_code}' -H 'X-Dcs-Api-Key: bob-key' \
  "http://127.0.0.1:$TFRONT_PORT/v1/workloads")
assert_eq "bob first request status" "$CODE" 200
CODE=$(curl -s -o "$WORK/ratelim.json" -D "$WORK/ratelim.hdr" -w '%{http_code}' \
  -H 'X-Dcs-Api-Key: bob-key' "http://127.0.0.1:$TFRONT_PORT/v1/workloads")
assert_eq "bob second request status" "$CODE" 429
assert_eq "rate-limit error code" "$(error_code "$WORK/ratelim.hdr")" quota_exceeded
grep -qi '^Retry-After:' "$WORK/ratelim.hdr" \
  || { echo "FAIL: rate-limit 429 without Retry-After" >&2; exit 1; }
echo "   ok: quota_exceeded and unauthorized are distinct machine-readable codes"

# 6d. the front-end accounts per tenant in its own /healthz.
ALICE_REQS=$(healthz_field $TFRONT_PORT \
  "next(t for t in h['tenants']['per_tenant'] if t['id'] == 'alice')['usage']['requests']")
[ "$ALICE_REQS" -ge 2 ] || { echo "FAIL: alice's admitted requests = $ALICE_REQS, want >= 2" >&2; exit 1; }
assert_eq "bob rate-limited counter" "$(healthz_field $TFRONT_PORT \
  "next(t for t in h['tenants']['per_tenant'] if t['id'] == 'bob')['usage']['rate_limited']")" 1
echo "   ok: front-end per-tenant usage: alice requests = $ALICE_REQS"

# 6e. attribution crossed the dispatch hop: the UNKEYED worker's metrics
# name alice as the tenant behind the dispatched job.
curl -sf "http://127.0.0.1:$TWORKER_PORT/metrics" | grep -q 'dcserved_tenant_requests_total{tenant="alice"}' \
  || { echo "FAIL: worker metrics lack alice's attribution (X-Dcs-Tenant hop broken)" >&2; exit 1; }
curl -sf "http://127.0.0.1:$TWORKER_PORT/metrics" \
  | grep 'dcserved_tenant_jobs_total{tenant="alice"' | sed 's/^/   /'
echo "   ok: worker attributed the dispatched job to alice"

# 6f. the admin plane: usage report behind the bootstrap token only.
CODE=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$TADMIN_PORT/admin/v1/usage")
assert_eq "admin without token" "$CODE" 401
curl -sf -H 'Authorization: Bearer boot-token' "http://127.0.0.1:$TADMIN_PORT/admin/v1/usage" \
  | python3 -c "
import json, sys
ids = {t['id'] for t in json.load(sys.stdin)['tenants']}
assert {'alice', 'bob'} <= ids, ids
print('   ok: admin usage report covers', ', '.join(sorted(ids)))"

# 6g. the deprecated /v1/sweep alias advertises its retirement on every
# response — here on the worker, in the same breath as an envelope error.
curl -s -o /dev/null -D "$WORK/sweep.hdr" -X POST -H 'Content-Type: application/json' \
  -d '{}' "http://127.0.0.1:$TWORKER_PORT/v1/sweep"
grep -qi '^Deprecation: true' "$WORK/sweep.hdr" \
  || { echo "FAIL: /v1/sweep response lacks the Deprecation header" >&2; exit 1; }
grep -qi '^Sunset: ' "$WORK/sweep.hdr" \
  || { echo "FAIL: /v1/sweep response lacks the Sunset header" >&2; exit 1; }
echo "   ok: /v1/sweep advertises Deprecation + Sunset"

echo "== 7. replication: kill the owner, survivors answer byte-identically with zero re-simulation"
# Three workers replicating every record to each other (factor 3), fast
# anti-entropy so the convergence measurement finishes in CI time.
R_PORTS=($RA_PORT $RB_PORT $RC_PORT)
for i in 0 1 2; do
  PEERS=""
  for j in 0 1 2; do
    [ $i = $j ] && continue
    PEERS="$PEERS${PEERS:+,}127.0.0.1:${R_PORTS[$j]}"
  done
  "$WORK/bin/dcserved" -addr "127.0.0.1:${R_PORTS[$i]}" -store "$WORK/r$i.store" \
    -replicas "$PEERS" -replication-factor 3 -anti-entropy-interval 2s \
    "${FLAGS[@]}" 2>"$WORK/r$i.log" &
  R_PIDS[$i]=$!
done
for p in "${R_PORTS[@]}"; do wait_ready "$p"; done
ALL_WORKERS="127.0.0.1:$RA_PORT,127.0.0.1:$RB_PORT,127.0.0.1:$RC_PORT"
# -store "" : the front-ends must NOT cache (the -store flag defaults to
# a local directory) — every answer in this step has to come off a worker.
"$WORK/bin/dcserved" -addr "127.0.0.1:$RFRONT_PORT" -store "" \
  -workers "$ALL_WORKERS" "${FLAGS[@]}" 2>"$WORK/rfront.log" &
RFRONT_PID=$!
wait_ready $RFRONT_PORT

# 7a. warm one counters job through the front-end: exactly one worker
# simulates it (the key's rendezvous owner); write-through fan-out copies
# the record to both peers without them simulating anything.
RCFP=$(healthz_field $RA_PORT "int(h['config_fp'], 16)")
RJOB="{\"kind\":\"counters\",\"warmup\":10000,\"key\":{\"Name\":\"Sort\",\"Profile\":{\"Seed\":5,\"MaxInstrs\":40000,\"CodeKB\":64,\"HeapMB\":4},\"ConfigFP\":$RCFP,\"MaxInstrs\":40000}}"
curl -sf -X POST -H 'Content-Type: application/json' -d "$RJOB" \
  "http://127.0.0.1:$RFRONT_PORT/v1/jobs" -o "$WORK/replica_warm.body"
T_WARM=$(date +%s.%N)
OWNER=-1
for i in 0 1 2; do
  W=$(healthz_field "${R_PORTS[$i]}" "h['store']['writes']")
  if [ "$W" != 0 ]; then
    [ "$OWNER" = -1 ] || { echo "FAIL: two owners simulated one key" >&2; exit 1; }
    OWNER=$i
    assert_eq "owner writes" "$W" 1
  fi
done
[ "$OWNER" != -1 ] || { echo "FAIL: no worker recorded the simulation" >&2; exit 1; }
echo "   ok: owner is node $OWNER (port ${R_PORTS[$OWNER]})"

# 7b. both survivors hold the record via the async push (not anti-entropy
# yet — that cadence is 2s, pushes land in milliseconds); time it.
SURVIVORS=()
for i in 0 1 2; do [ $i = "$OWNER" ] || SURVIVORS+=($i); done
for i in "${SURVIVORS[@]}"; do
  for _ in $(seq 1 100); do
    [ "$(healthz_field "${R_PORTS[$i]}" "h['store']['records']")" = 1 ] && break
    sleep 0.05
  done
  assert_eq "survivor $i replicated records" \
    "$(healthz_field "${R_PORTS[$i]}" "h['store']['records']")" 1
  assert_eq "survivor $i writes (no re-simulation)" \
    "$(healthz_field "${R_PORTS[$i]}" "h['store']['writes']")" 0
done
T_PUSHED=$(date +%s.%N)
PUSH_SECS=$(python3 -c "print(f'{$T_PUSHED - $T_WARM:.3f}')")
OWNER_PUSHED=$(healthz_field "${R_PORTS[$OWNER]}" "h['store']['replication']['pushed']")
[ "$OWNER_PUSHED" -ge 2 ] || { echo "FAIL: owner pushed $OWNER_PUSHED records, want >= 2" >&2; exit 1; }
echo "   ok: write-through fan-out landed on both survivors in ${PUSH_SECS}s (owner pushed $OWNER_PUSHED)"

# 7c. kill the owner; a fresh front-end rotating reads across the full
# worker set answers the same job byte-identically from a survivor:
# no fallback (nothing simulated locally), no survivor write.
kill "${R_PIDS[$OWNER]}" 2>/dev/null || true
wait "${R_PIDS[$OWNER]}" 2>/dev/null || true
"$WORK/bin/dcserved" -addr "127.0.0.1:$RFRONT2_PORT" -store "" \
  -workers "$ALL_WORKERS" -dispatch-replicas 3 "${FLAGS[@]}" 2>"$WORK/rfront2.log" &
wait_ready $RFRONT2_PORT
T_FAIL0=$(date +%s.%N)
curl -sf -X POST -H 'Content-Type: application/json' -d "$RJOB" \
  "http://127.0.0.1:$RFRONT2_PORT/v1/jobs" -o "$WORK/replica_failover.body"
T_FAIL1=$(date +%s.%N)
FAILOVER_SECS=$(python3 -c "print(f'{$T_FAIL1 - $T_FAIL0:.3f}')")
cmp -s "$WORK/replica_warm.body" "$WORK/replica_failover.body" \
  || { echo "FAIL: survivor's bytes diverge from the owner's original record" >&2; exit 1; }
echo "   ok: failover answer byte-identical to the dead owner's record (${FAILOVER_SECS}s)"
assert_eq "failover fallbacks" "$(healthz_field $RFRONT2_PORT "h['store']['dispatch']['fallbacks']")" 0
RH=$(healthz_field $RFRONT2_PORT "h['store']['dispatch']['remote_hits']")
[ "$RH" -ge 1 ] || { echo "FAIL: failover request never hit a worker" >&2; exit 1; }
for i in "${SURVIVORS[@]}"; do
  assert_eq "survivor $i writes after failover (zero re-simulation)" \
    "$(healthz_field "${R_PORTS[$i]}" "h['store']['writes']")" 0
done

# 7d. a brand-new empty node pointed at the survivors converges by
# anti-entropy alone: it pulls the record it is missing and never
# simulates. Time from process start to a converged store.
NEW_PEERS="127.0.0.1:${R_PORTS[${SURVIVORS[0]}]},127.0.0.1:${R_PORTS[${SURVIVORS[1]}]}"
T_NEW0=$(date +%s.%N)
"$WORK/bin/dcserved" -addr "127.0.0.1:$RNEW_PORT" -store "$WORK/rnew.store" \
  -replicas "$NEW_PEERS" -replication-factor 3 -anti-entropy-interval 1s \
  "${FLAGS[@]}" 2>"$WORK/rnew.log" &
wait_ready $RNEW_PORT
for _ in $(seq 1 200); do
  [ "$(healthz_field $RNEW_PORT "h['store']['records']")" = 1 ] && break
  sleep 0.1
done
T_NEW1=$(date +%s.%N)
CONVERGE_SECS=$(python3 -c "print(f'{$T_NEW1 - $T_NEW0:.3f}')")
assert_eq "new node records after anti-entropy" \
  "$(healthz_field $RNEW_PORT "h['store']['records']")" 1
assert_eq "new node writes (convergence costs no simulation)" \
  "$(healthz_field $RNEW_PORT "h['store']['writes']")" 0
PULLED=$(healthz_field $RNEW_PORT "h['store']['replication']['pulled']")
REPAIRED=$(healthz_field $RNEW_PORT "h['store']['replication']['repaired']")
[ "$PULLED" -ge 1 ] || { echo "FAIL: new node pulled $PULLED records" >&2; exit 1; }
[ "$REPAIRED" -ge 1 ] || { echo "FAIL: new node repaired $REPAIRED records" >&2; exit 1; }
echo "   ok: new node converged in ${CONVERGE_SECS}s (pulled $PULLED, repaired $REPAIRED)"
# The cluster-wide gauge (total record copies across self + peers,
# refreshed each digest round) settles at one copy per live node once a
# round runs against the converged stores.
for _ in $(seq 1 100); do
  CLUSTER_RECORDS=$(healthz_field $RNEW_PORT "h['store']['replication']['cluster_records']")
  [ "$CLUSTER_RECORDS" = 3 ] && break
  sleep 0.1
done
assert_eq "cluster record copies (one per live node)" "$CLUSTER_RECORDS" 3

python3 - <<PYEOF
import json
out = {
    "push_fanout_secs": $PUSH_SECS,
    "failover_request_secs": $FAILOVER_SECS,
    "anti_entropy_convergence_secs": $CONVERGE_SECS,
    "owner_pushed": $OWNER_PUSHED,
    "new_node_pulled": $PULLED,
    "new_node_repaired": $REPAIRED,
}
json.dump(out, open("$BENCH_REPLICA_OUT", "w"), indent=2)
print("   ok: replication benchmark artifact at $BENCH_REPLICA_OUT")
PYEOF

echo "e2e-distributed: PASS"
