// Package dcbench's benchmark harness regenerates every table and figure of
// "Characterizing Data Analysis Workloads in Data Centers" (IISWC 2013).
// Each benchmark reruns the corresponding experiment and reports its
// headline metrics via testing.B metrics, so
//
//	go test -bench=. -benchmem
//
// prints the whole evaluation. The ablation benchmarks at the bottom
// exercise the design recommendations the paper draws (branch predictor
// complexity, LLC sizing, the framework-overhead front-end story, and
// memory-level parallelism).
package dcbench

import (
	"context"
	"testing"

	"dcbench/internal/core"
	"dcbench/internal/report"
	"dcbench/internal/sweep"
	"dcbench/internal/uarch"
	"dcbench/internal/uarch/bpred"
	"dcbench/internal/workloads"
)

// benchOptions keeps the per-iteration cost of the counter benches modest.
func benchOptions() report.Options {
	o := report.DefaultOptions()
	o.Scale = 0.01
	o.Instrs = 250_000
	o.Warmup = 120_000
	return o
}

// characterized returns the shared characterization sweep: the sweep
// engine's memo table caches it across benchmarks of one run, so only the
// first caller pays for simulation.
func characterized(b *testing.B) []*core.Result {
	b.Helper()
	return report.Characterized(benchOptions())
}

func daAvg(rs []*core.Result, f func(*uarch.Counters) float64) float64 {
	return core.DataAnalysisAverage(rs, f)
}

func svcAvg(rs []*core.Result, f func(*uarch.Counters) float64) float64 {
	return core.ClassAverage(rs, core.Service, f)
}

// --- Figure 1 / Tables ---

func BenchmarkFigure1DomainShares(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if report.Figure1() == nil {
			b.Fatal("no figure")
		}
	}
}

func BenchmarkTable1RetiredInstructions(b *testing.B) {
	o := benchOptions()
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		t, err := report.Table1(context.Background(), o, rs)
		if err != nil {
			b.Fatal(err)
		}
		// Report the Naive Bayes estimate (the paper's largest, 68131e9).
		for _, row := range t.Rows {
			if row.Label == "Naive Bayes" {
				b.ReportMetric(row.Values[1], "bayes-instr-1e9")
			}
		}
	}
}

func BenchmarkTable3Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if report.Table3() == "" {
			b.Fatal("empty config")
		}
	}
}

// --- Figure 2: speedup ---

func BenchmarkFigure2Speedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.Figure2(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		var min, max float64 = 99, 0
		var bayes float64
		for _, r := range t.Rows {
			s8 := r.Values[2]
			if s8 < min {
				min = s8
			}
			if s8 > max {
				max = s8
			}
			if r.Label == "Naive Bayes" {
				bayes = s8
			}
		}
		b.ReportMetric(min, "speedup8-min")
		b.ReportMetric(max, "speedup8-max")
		b.ReportMetric(bayes, "speedup8-bayes")
	}
}

// --- Figure 5: disk writes ---

func BenchmarkFigure5DiskWrites(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		t, err := report.Figure5(context.Background(), o)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range t.Rows {
			if r.Label == "Sort" {
				b.ReportMetric(r.Values[0], "sort-writes/s")
			}
		}
	}
}

// --- Figures 3-12: counter metrics over the 26-workload sweep ---

func BenchmarkFigure3IPC(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure3(rs)
	}
	ipc := func(c *uarch.Counters) float64 { return c.IPC() }
	b.ReportMetric(daAvg(rs, ipc), "ipc-da-avg")
	b.ReportMetric(svcAvg(rs, ipc), "ipc-svc-avg")
}

func BenchmarkFigure4KernelShare(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure4(rs)
	}
	ks := func(c *uarch.Counters) float64 { return 100 * c.KernelShare() }
	b.ReportMetric(daAvg(rs, ks), "kernel%-da-avg")
	b.ReportMetric(svcAvg(rs, ks), "kernel%-svc-avg")
}

func BenchmarkFigure6Stalls(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure6(rs)
	}
	backend := func(c *uarch.Counters) float64 {
		s := c.StallBreakdown()
		return 100 * (s[2] + s[3] + s[4] + s[5])
	}
	b.ReportMetric(daAvg(rs, backend), "backend-stall%-da")
	b.ReportMetric(svcAvg(rs, backend), "backend-stall%-svc")
}

func BenchmarkFigure7L1IMPKI(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure7(rs)
	}
	b.ReportMetric(daAvg(rs, func(c *uarch.Counters) float64 { return c.L1IMPKI() }), "l1i-mpki-da-avg")
}

func BenchmarkFigure8ITLBWalks(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure8(rs)
	}
	b.ReportMetric(daAvg(rs, func(c *uarch.Counters) float64 { return c.ITLBWalksPKI() }), "itlb-walks-pki-da")
}

func BenchmarkFigure9L2MPKI(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure9(rs)
	}
	mpki := func(c *uarch.Counters) float64 { return c.L2MPKI() }
	b.ReportMetric(daAvg(rs, mpki), "l2-mpki-da-avg")
	b.ReportMetric(svcAvg(rs, mpki), "l2-mpki-svc-avg")
}

func BenchmarkFigure10L3HitRatio(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure10(rs)
	}
	b.ReportMetric(100*daAvg(rs, func(c *uarch.Counters) float64 { return c.L3HitRatio() }), "l3-hit%-da-avg")
}

func BenchmarkFigure11DTLBWalks(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure11(rs)
	}
	b.ReportMetric(daAvg(rs, func(c *uarch.Counters) float64 { return c.DTLBWalksPKI() }), "dtlb-walks-pki-da")
}

func BenchmarkFigure12BranchMisprediction(b *testing.B) {
	rs := characterized(b)
	for i := 0; i < b.N; i++ {
		report.Figure12(rs)
	}
	br := func(c *uarch.Counters) float64 { return 100 * c.BranchMispredictRatio() }
	b.ReportMetric(daAvg(rs, br), "mispredict%-da-avg")
	b.ReportMetric(svcAvg(rs, br), "mispredict%-svc-avg")
}

// --- Ablations ---

// characterizeWith runs one workload under a modified core config.
func characterizeWith(b *testing.B, name string, mutate func(*uarch.Config)) *uarch.Counters {
	b.Helper()
	w, err := core.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 120_000
	mutate(&cfg)
	return core.Characterize(w, cfg, 370_000).Counters
}

// BenchmarkAblationBranchPredictor supports the paper's Section IV-E
// recommendation: a simpler predictor loses little on data analysis
// workloads.
func BenchmarkAblationBranchPredictor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tour := characterizeWith(b, "K-means", func(c *uarch.Config) {})
		bim := characterizeWith(b, "K-means", func(c *uarch.Config) { c.Predictor = bpred.NewBimodal(14) })
		stat := characterizeWith(b, "K-means", func(c *uarch.Config) { c.Predictor = bpred.Static{} })
		b.ReportMetric(100*tour.BranchMispredictRatio(), "mispredict%-tournament")
		b.ReportMetric(100*bim.BranchMispredictRatio(), "mispredict%-bimodal")
		b.ReportMetric(100*stat.BranchMispredictRatio(), "mispredict%-static")
		b.ReportMetric(tour.IPC()/bim.IPC(), "ipc-ratio-tournament-vs-bimodal")
	}
}

// BenchmarkAblationLLCSize supports the LLC-sizing recommendation
// (Section IV-D): sweep the L3 from 3 MB to 24 MB on the workload with the
// largest LLC-resident footprint (Data Serving) and report the hit ratio
// at each point — the knee locates the capacity the class actually needs.
func BenchmarkAblationLLCSize(b *testing.B) {
	w, err := core.ByName("Data Serving")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, mb := range []int{3, 6, 12, 24} {
			cfg := uarch.DefaultConfig()
			// Long window: reuse distances must exceed the smaller L3s
			// for capacity to matter at all.
			cfg.Warmup = 1_000_000
			cfg.L3Size = mb << 20
			c := core.Characterize(w, cfg, 4_000_000).Counters
			b.ReportMetric(100*c.L3HitRatio(), "l3-hit%-"+itoa(mb)+"MB")
		}
	}
}

// BenchmarkAblationFrameworkOverhead isolates the big-binary front-end
// story (Section IV-C): the same WordCount kernel with and without the
// JVM/Hadoop framework model.
func BenchmarkAblationFrameworkOverhead(b *testing.B) {
	w, err := core.ByName("WordCount")
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 120_000
	for i := 0; i < b.N; i++ {
		with := core.Characterize(w, cfg, 370_000).Counters
		lean := *w
		p := w.Profile
		p.FrameworkEvery = 0
		p.GCEvery = 0
		p.CodeKB = 64
		p.HotCodeKB = 32
		lean.Profile = p
		without := core.Characterize(&lean, cfg, 370_000).Counters
		b.ReportMetric(with.L1IMPKI(), "l1i-mpki-framework")
		b.ReportMetric(without.L1IMPKI(), "l1i-mpki-lean")
		b.ReportMetric(without.IPC()/with.IPC(), "ipc-gain-lean")
	}
}

// BenchmarkAblationMSHR sweeps memory-level parallelism on STREAM,
// the sensitivity that separates bandwidth kernels from latency kernels.
func BenchmarkAblationMSHR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, m := range []int{1, 4, 10, 32} {
			m := m
			c := characterizeWith(b, "HPCC-STREAM", func(c *uarch.Config) { c.MSHRs = m })
			b.ReportMetric(c.IPC(), "stream-ipc-mshr"+itoa(m))
		}
	}
}

// --- Sweep engine: serial vs parallel ---

// benchSweep runs the full 26-workload characterization sweep at the given
// parallelism with memoization off, so every iteration pays the whole
// simulation cost — the serial/parallel pair quantifies the engine's
// speedup (and its counters are bit-identical either way).
func benchSweep(b *testing.B, workers int) {
	o := benchOptions()
	jobs := core.RegistryJobs()
	cfg := uarch.DefaultConfig()
	cfg.Warmup = o.Warmup
	eng := sweep.NewEngine()
	instrs := o.Warmup + o.Instrs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counters, err := eng.Run(context.Background(), jobs, cfg, instrs,
			sweep.RunOptions{Workers: workers, NoMemo: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(counters) != len(jobs) {
			b.Fatalf("got %d results, want %d", len(counters), len(jobs))
		}
	}
	b.ReportMetric(float64(len(jobs)*int(instrs)*b.N)/b.Elapsed().Seconds(), "instrs/s")
}

func BenchmarkSweepSerial(b *testing.B)    { benchSweep(b, 1) }
func BenchmarkSweepParallel4(b *testing.B) { benchSweep(b, 4) }

// BenchmarkClusterWordCount measures the end-to-end simulated MapReduce
// stack itself (engine throughput, not workload metrics).
func BenchmarkClusterWordCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		env := workloads.NewEnv(4, 0.005, 7)
		if _, err := workloads.WordCountWorkload().Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCoreSimulator measures raw core-model throughput in
// instructions per second.
func BenchmarkCoreSimulator(b *testing.B) {
	w, err := core.ByName("K-means")
	if err != nil {
		b.Fatal(err)
	}
	const instrs = 500_000
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Characterize(w, uarch.DefaultConfig(), instrs)
	}
	b.ReportMetric(float64(instrs*int64(b.N))/b.Elapsed().Seconds(), "instrs/s")
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
