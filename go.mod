module dcbench

go 1.23
