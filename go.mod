module dcbench

go 1.24
