// Command dcserved serves the paper's characterization results over HTTP:
// the figures and tables of "Characterizing Data Analysis Workloads in
// Data Centers" (IISWC 2013), computed on demand by the concurrent sweep
// engine and persisted in an on-disk result store, so warm results survive
// restarts and are shared across processes.
//
// Endpoints (JSON by default; ?format=csv or Accept: text/csv where a
// table shape exists):
//
//	GET  /healthz                        liveness, request stats, store + dispatch counters
//	GET  /metrics                        Prometheus text exposition
//	GET  /v1/workloads                   the 26-workload registry
//	GET  /v1/workloads/{name}/counters   one workload's counter file
//	GET  /v1/figures/{1..12}             the paper's figures
//	GET  /v1/tables/{1..3}               the paper's tables
//	POST /v1/jobs                        compute endpoint: run one kind-tagged job
//	                                     ("counters" or "cluster"), return its record;
//	                                     ?wait=false (or "async": true) answers 202 + job id
//	GET  /v1/jobs                        list tracked async jobs
//	GET  /v1/jobs/{id}                   one job's state + history (SSE under
//	                                     Accept: text/event-stream)
//	GET  /v1/jobs/{id}/result            the finished job's record
//	DELETE /v1/jobs/{id}                 cancel: frees the slot, stops the simulation
//	                                     once no other caller shares it
//	POST /v1/sweep                       deprecated alias: a counters job in the old shape
//	                                     (answers with Deprecation + Sunset headers)
//
// Errors answer a JSON envelope {"error": {"code", "message", "trace_id"}}
// with a stable machine-readable code (also in the X-Dcs-Error-Code
// header); clients preferring text/plain get the bare message. See
// docs/api.md for the full route and error-code catalogue.
//
// Multi-tenancy: -keys-file names a JSON file of API keys; when set,
// every non-probe request must present a key (Authorization: Bearer or
// X-Dcs-Api-Key) and is rate-limited and quota-accounted per tenant.
// The file hot-reloads on SIGHUP or mtime change. -admin-addr with
// -admin-token mounts the /admin/v1 key-management plane (create/revoke
// keys, set limits, usage report) on its own listener; with -debug-addr
// set but no -admin-addr, the admin plane rides the debug listener.
// Without -keys-file the server behaves exactly as before: no auth, no
// limits — though X-Dcs-Tenant attributions are still accounted.
//
// Flags:
//
//	-addr   listen address (default :8337)
//	-keys-file f       JSON API-key file; empty = no authentication
//	-admin-addr addr   serve /admin/v1 on this separate address; empty = ride -debug-addr
//	-admin-token t     bearer token guarding /admin/v1; empty disables the admin plane
//	-store  result store directory; "" disables persistence (default dcserved.store)
//	-store-shards n        shard count when creating a store (default 16)
//	-store-max-records n   LRU-evict records beyond this count; 0 = unlimited
//	-store-max-bytes n     LRU-evict records beyond this many bytes; 0 = unlimited
//	-store-max-age d       evict records unused for longer than d; 0 = keep forever
//	-max-inflight n        bound concurrent compute jobs; excess shed 429 (0 = unlimited)
//	-trace-cache-bytes n   byte budget for captured instruction traces replayed
//	                       across sweep configs; 0 disables (default 256 MiB)
//	-workers host:port,...     dispatch job misses to these dcserved workers
//	-dispatch-timeout d        per-attempt timeout for dispatched jobs
//	-dispatch-retries n        extra attempts on other workers after a failure
//	-dispatch-hedge d          hedge a silent dispatch onto the next worker; 0 disables
//	-dispatch-cooldown d       how long a repeatedly failing worker stays demoted
//	-dispatch-api-key k        bearer key presented to keyed workers; tenant ids are
//	                           forwarded beside it in X-Dcs-Tenant either way
//	-dispatch-replicas n       store copies per key in the worker cluster; reads
//	                           rotate across a key's replicas when above 1
//	-replicas host:port,...    fan fresh store records out to these peer nodes
//	                           and anti-entropy against them (requires -store)
//	-replication-factor n      total copies of each fresh record, this node included
//	-anti-entropy-interval d   digest-exchange period; <0 disables the loop
//	-debug-addr addr   serve /debug/traces and /debug/pprof on a separate
//	                   listener, kept off the service port; empty disables
//	-grace  shutdown grace period for in-flight requests (default 15s)
//	-scale, -seed, -instrs, -warmup, -j   as in dcbench
//
// Every dcserved is a job worker: POST /v1/jobs runs one kind-tagged job —
// a characterization sweep key ("counters") or a cluster experiment cell
// ("cluster") — and answers with the store's checksummed record of the
// result. A dcserved started with -workers is a front-end over that worker
// set — misses of both kinds are hashed across the workers, results are
// verified and written through to the local store, and when no worker is
// reachable the front-end degrades to local simulation (counted per kind
// in /healthz under store.dispatch). A worker started with -max-inflight
// sheds excess jobs with 429 and a Retry-After derived from its queue
// depth and measured per-kind service time — unless the request is for a
// key the worker is already computing, in which case it joins that
// in-flight simulation instead of shedding; front-ends demote shedding
// workers in their ranking for exactly the hinted window. Cancellation is
// refcounted end to end: a client that hangs up (or DELETEs its async
// job) releases its share of the computation, and the simulation itself
// stops only when the last sharer is gone.
//
// The store is sharded on disk and carries a persisted manifest; a store
// directory written by the previous flat layout (schema 1) is migrated in
// place on startup. Both sweep counters and the cluster-experiment stats
// (Figures 2/5, Table I) persist, so a restarted server re-simulates
// nothing that is already on disk.
//
// Responses carry ETag/Cache-Control derived from (seed, scale, config
// fingerprint), and concurrent cold requests for the same resource
// coalesce into one sweep. SIGINT/SIGTERM shut down gracefully; sweeps
// still in flight after the grace period are cancelled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dcbench/internal/dispatch"
	"dcbench/internal/memtrace/tracecache"
	"dcbench/internal/obs"
	"dcbench/internal/replica"
	"dcbench/internal/report"
	"dcbench/internal/serve"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/tenant"
	"dcbench/internal/workloads"
)

func main() {
	opts := report.DefaultOptions()
	var storeOpts store.OpenOptions
	var dispatchOpts dispatch.Options
	var traceOpts tracecache.Options
	var replicaOpts replica.Options
	addr := flag.String("addr", ":8337", "listen address")
	storeDir := flag.String("store", "dcserved.store", "result store directory; empty disables persistence")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period")
	debugAddr := flag.String("debug-addr", "", "serve /debug/traces and /debug/pprof on this separate address; empty disables")
	maxInflight := flag.Int("max-inflight", 0, "bound concurrent compute jobs; excess answered 429 + Retry-After (0 = unlimited)")
	keysFile := flag.String("keys-file", "", "JSON API-key file; empty disables authentication")
	adminAddr := flag.String("admin-addr", "", "serve /admin/v1 on this separate address; empty = ride -debug-addr")
	adminToken := flag.String("admin-token", "", "bearer token guarding /admin/v1; empty disables the admin plane")
	report.RegisterFlags(flag.CommandLine, &opts)
	store.RegisterFlags(flag.CommandLine, &storeOpts)
	dispatch.RegisterFlags(flag.CommandLine, &dispatchOpts)
	tracecache.RegisterFlags(flag.CommandLine, &traceOpts)
	replica.RegisterFlags(flag.CommandLine, &replicaOpts)
	flag.Parse()

	log := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: slog.LevelInfo}))
	slog.SetDefault(log)

	cfg := serve.Config{Options: opts, MaxInflight: *maxInflight,
		TraceCacheBytes: traceOpts.MaxBytes, Logger: log}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tenants *tenant.Registry
	if *keysFile != "" {
		var err error
		tenants, err = tenant.Open(*keysFile, log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserved:", err)
			os.Exit(1)
		}
		tenants.WatchSIGHUP(ctx)
		log.Info("tenant auth enabled", "keys", *keysFile)
	} else {
		tenants = tenant.NewRegistry(log)
	}
	cfg.Tenants = tenants
	var local sweep.MemoBackend
	var localStats workloads.StatsBackend
	if *storeDir != "" {
		storeOpts.Log = log
		st, err := store.OpenWith(*storeDir, storeOpts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserved:", err)
			os.Exit(1)
		}
		defer st.Close()
		cfg.Store = st
		local = st.Backend(log)
		localStats = st.StatsBackend(log)
	}
	var repl *replica.Replicator
	if len(replicaOpts.Peers) > 0 {
		// Replication sits between the store and any dispatch wrapper:
		// fresh local records fan out to peers, and the peers' pushes land
		// directly in the store — so a dispatching front-end replicates
		// too, and a plain worker replicates without dispatch at all.
		replicaOpts.APIKey = dispatchOpts.APIKey
		var err error
		repl, err = replica.New(replicaOpts, cfg.Store, log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserved:", err)
			os.Exit(1)
		}
		local = repl.WrapMemo(local)
		localStats = repl.WrapStats(localStats)
		cfg.Backend = local
		cfg.Cluster = localStats
		log.Info("replicating store records", "peers", replicaOpts.Peers,
			"factor", replicaOpts.Factor, "anti_entropy", replicaOpts.Interval)
	}
	if len(dispatchOpts.Workers) > 0 {
		remote, err := dispatch.New(dispatchOpts, opts.Warmup, local, localStats, log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcserved:", err)
			os.Exit(1)
		}
		cfg.Backend = remote
		cfg.Cluster = remote
		log.Info("dispatching job misses", "workers", dispatchOpts.Workers)
	}

	srv := serve.New(cfg)
	if repl != nil {
		// The replicator's push/anti-entropy spans land in the server's
		// trace ring, beside the request timelines they repair for.
		repl.SetRecorder(srv.Recorder())
		repl.Start(ctx)
		defer repl.Close()
	}
	admin := serve.AdminHandler(tenants, *adminToken, log)
	if *adminAddr != "" {
		// The admin plane gets its own listener when asked: key
		// management can then live on a tighter network than debugging.
		go func() {
			log.Info("admin listener", "addr", *adminAddr)
			if err := http.ListenAndServe(*adminAddr, admin); err != nil {
				log.Error("admin listener failed", "addr", *adminAddr, "err", err)
			}
		}()
	}
	if *debugAddr != "" {
		// Its own listener on purpose: profiling a drowning server must
		// not compete with the traffic drowning it.
		mux := http.NewServeMux()
		mux.Handle("/", obs.DebugMux(srv.Recorder()))
		if *adminAddr == "" {
			// No dedicated admin listener: the plane rides the debug one,
			// which is already operator-only.
			mux.Handle("/admin/v1/", admin)
		}
		go func() {
			log.Info("debug listener", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Error("debug listener failed", "addr", *debugAddr, "err", err)
			}
		}()
	}
	if err := srv.Run(ctx, *addr, *grace); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dcserved:", err)
		os.Exit(1)
	}
}
