package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strings"
	"testing"

	"dcbench/internal/report"
)

// TestUsageTextMatchesRealDefaults pins the -help output to
// report.DefaultOptions(): the flag defaults are taken from it, so
// PrintDefaults must advertise exactly those values.
func TestUsageTextMatchesRealDefaults(t *testing.T) {
	opts := report.DefaultOptions()
	fs := flag.NewFlagSet("dcbench", flag.ContinueOnError)
	registerFlags(fs, &opts)
	var b strings.Builder
	fs.SetOutput(&b)
	fs.PrintDefaults()
	usage := b.String()

	d := report.DefaultOptions()
	for flagName, want := range map[string]string{
		"scale":  fmt.Sprintf("default %g", d.Scale),
		"seed":   fmt.Sprintf("default %d", d.Seed),
		"instrs": fmt.Sprintf("default %d", d.Instrs),
		"warmup": fmt.Sprintf("default %d", d.Warmup),
	} {
		if !strings.Contains(usage, want) {
			t.Errorf("-%s usage does not advertise %q:\n%s", flagName, want, usage)
		}
	}
}

// TestDocCommentMatchesRealDefaults pins the package doc comment's flag
// table to report.DefaultOptions(), so the documented defaults can never
// drift from the real ones again (this PR fixed -scale documented as 0.02
// while the code defaulted to 0.05).
func TestDocCommentMatchesRealDefaults(t *testing.T) {
	f, err := os.Open("main.go")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	src, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	d := report.DefaultOptions()
	want := map[string]string{
		"scale":  fmt.Sprintf("%g", d.Scale),
		"seed":   fmt.Sprintf("%d", d.Seed),
		"instrs": fmt.Sprintf("%d", d.Instrs),
		"warmup": fmt.Sprintf("%d", d.Warmup),
		"j":      fmt.Sprintf("%d", d.Jobs),
	}
	re := regexp.MustCompile(`(?m)^//\s+-(scale|seed|instrs|warmup|j)\s+\S+.*\(default ([0-9.]+)\)`)
	matches := re.FindAllStringSubmatch(string(src), -1)
	if len(matches) != len(want) {
		t.Fatalf("doc comment documents %d flag defaults, want %d", len(matches), len(want))
	}
	for _, m := range matches {
		if got := m[2]; got != want[m[1]] {
			t.Errorf("doc comment says -%s defaults to %s; report.DefaultOptions() says %s",
				m[1], got, want[m[1]])
		}
	}
}
