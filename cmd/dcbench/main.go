// Command dcbench regenerates the tables and figures of "Characterizing
// Data Analysis Workloads in Data Centers" (IISWC 2013) on the simulated
// cluster and core models.
//
// Usage:
//
//	dcbench list                 # the 26-workload registry and the 11 cluster workloads
//	dcbench run <workload>       # one cluster workload on 4 slaves
//	dcbench figure <1..12>       # regenerate one figure
//	dcbench table <1..3>         # regenerate one table
//	dcbench all                  # everything, in paper order
//
// Flags:
//
//	-scale f    fraction of the paper's input sizes for cluster runs (default 0.05)
//	-seed n     generator seed (default 42)
//	-instrs n   measured instructions per workload trace (default 650000)
//	-warmup n   ramp-up instructions excluded from counters (default 250000)
//	-j n        sweep parallelism; 0 = one worker per host core (default 0)
//	-csv        emit CSV instead of tables
//	-chart      append an ASCII bar chart to single-metric figures
//	-store dir  persist sweep and cluster results in dir across runs, sharing
//	            warm results with dcserved; with -store-shards,
//	            -store-max-records, -store-max-bytes and -store-max-age as
//	            in dcserved
//	-workers host:port,...  dispatch sweep and cluster-job misses to dcserved
//	            workers, with -dispatch-timeout, -dispatch-retries,
//	            -dispatch-hedge, -dispatch-cooldown and -dispatch-api-key
//	            (bearer key for workers running with -keys-file) as in
//	            dcserved
//	-replicas host:port,...  fan fresh store records out to these dcserved
//	            peers (requires -store), with -replication-factor and
//	            -anti-entropy-interval as in dcserved
//	-trace-cache-bytes n    byte budget for captured instruction traces
//	            replayed across sweep configs; 0 disables (default 256 MiB)
//	-debug-addr addr   serve /debug/traces and /debug/pprof while the run
//	            lasts (profile a long `all` in flight); empty disables
//
// Sweeps are deterministic at any -j: parallel runs produce bit-identical
// counters to -j 1 at the same seed — and to a dispatched run, since
// workers simulate the same keys on the same machine model.
//
// SIGINT/SIGTERM cancel the run: local simulations stop between trace
// batches, and with -workers the in-flight dispatched requests are
// aborted so the workers' own refcounted cancellation frees their
// admission slots.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"

	"dcbench/internal/core"
	"dcbench/internal/dispatch"
	"dcbench/internal/memtrace/tracecache"
	"dcbench/internal/obs"
	"dcbench/internal/replica"
	"dcbench/internal/report"
	"dcbench/internal/store"
	"dcbench/internal/sweep"
	"dcbench/internal/workloads"
)

// registerFlags declares the CLI's flags on fs (the shared run-parameter
// flags, the shared store flags, the shared dispatch flags, plus dcbench's
// output flags), defaulted from *opts and written back on Parse. Split out
// of main so tests can pin the usage text to the real defaults.
func registerFlags(fs *flag.FlagSet, opts *report.Options) (csv, chart, jsonOut *bool, storeDir, debugAddr *string, storeOpts *store.OpenOptions, dispatchOpts *dispatch.Options, traceOpts *tracecache.Options, replicaOpts *replica.Options) {
	report.RegisterFlags(fs, opts)
	storeOpts = &store.OpenOptions{}
	store.RegisterFlags(fs, storeOpts)
	dispatchOpts = &dispatch.Options{}
	dispatch.RegisterFlags(fs, dispatchOpts)
	traceOpts = &tracecache.Options{}
	tracecache.RegisterFlags(fs, traceOpts)
	replicaOpts = &replica.Options{}
	replica.RegisterFlags(fs, replicaOpts)
	storeDir = fs.String("store", "", "persist results in this store directory across runs; empty disables")
	debugAddr = fs.String("debug-addr", "", "serve /debug/traces and /debug/pprof on this address for the run's duration; empty disables")
	csv = fs.Bool("csv", false, "emit CSV")
	chart = fs.Bool("chart", false, "append ASCII bar charts")
	jsonOut = fs.Bool("json", false, "emit the characterization sweep as JSON (figure/all)")
	return csv, chart, jsonOut, storeDir, debugAddr, storeOpts, dispatchOpts, traceOpts, replicaOpts
}

// wireBackends points opts at a run-owned engine when a store or a worker
// set is configured: sweep results go through the engine's memo backend
// (store, dispatch, or dispatch over store) and cluster results through
// the matching stats backend — the same seams dcserved uses, so dcbench
// shares warm results with a front-end and dispatches both job kinds to
// the same workers.
func wireBackends(storeDir string, storeOpts store.OpenOptions, dispatchOpts dispatch.Options, replicaOpts replica.Options, opts *report.Options) (*store.Store, *replica.Replicator, error) {
	var st *store.Store
	var repl *replica.Replicator
	var backend sweep.MemoBackend
	var statsBackend workloads.StatsBackend
	if storeDir != "" {
		var err error
		st, err = store.OpenWith(storeDir, storeOpts)
		if err != nil {
			return nil, nil, err
		}
		backend = st.Backend(nil)
		statsBackend = st.StatsBackend(nil)
	}
	if len(replicaOpts.Peers) > 0 {
		// Replication sits between the store and any dispatch wrapper, so
		// results this run simulates locally land on the peer nodes too.
		replicaOpts.APIKey = dispatchOpts.APIKey
		var err error
		repl, err = replica.New(replicaOpts, st, nil)
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, nil, err
		}
		backend = repl.WrapMemo(backend)
		statsBackend = repl.WrapStats(statsBackend)
	}
	if len(dispatchOpts.Workers) > 0 {
		remote, err := dispatch.New(dispatchOpts, opts.Warmup, backend, statsBackend, nil)
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, nil, err
		}
		backend = remote
		statsBackend = remote
	}
	if statsBackend != nil {
		opts.Cluster = workloads.NewStatsCache(statsBackend)
	}
	if backend != nil {
		engine := sweep.NewEngine()
		engine.SetMemoBackend(backend)
		opts.Engine = engine
	}
	return st, repl, nil
}

func main() {
	opts := report.DefaultOptions()
	csv, chart, jsonOut, storeDir, debugAddr, storeOpts, dispatchOpts, traceOpts, replicaOpts := registerFlags(flag.CommandLine, &opts)
	flag.Parse()

	if *storeDir != "" || len(dispatchOpts.Workers) > 0 || len(replicaOpts.Peers) > 0 {
		st, repl, err := wireBackends(*storeDir, *storeOpts, *dispatchOpts, *replicaOpts, &opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dcbench:", err)
			os.Exit(1)
		}
		if st != nil {
			defer st.Close()
		}
		if repl != nil {
			// Pushes drain before exit (Close waits for the queue), so a
			// one-shot run's results reach the peers; the anti-entropy loop
			// only matters for long-lived processes but costs nothing here.
			repl.Start(context.Background())
			defer repl.Close()
		}
	}
	if traceOpts.MaxBytes > 0 {
		// Trace capture/replay sits on the run's engine (creating one when
		// no store or worker set already did), so figures that sweep one
		// workload across machine configurations generate its trace once.
		if opts.Engine == nil {
			opts.Engine = sweep.NewEngine()
		}
		opts.Engine.SetTraceCache(tracecache.New(traceOpts.MaxBytes))
	}

	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	// An interrupted run cancels its context: local sweeps stop between
	// trace batches, and dispatched jobs abort their worker HTTP requests —
	// through the workers' refcounted cancellation, a Ctrl-C here frees
	// worker slots instead of leaving remote simulations burning. A second
	// signal kills the process the usual way.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// With -debug-addr the run carries a process recorder and one trace
	// per invocation, so a long `all` can be profiled (and, once finished,
	// its phase timeline fetched) over HTTP while it runs.
	var tr *obs.Trace
	if *debugAddr != "" {
		rec := obs.NewRecorder(0)
		go func() {
			if err := http.ListenAndServe(*debugAddr, obs.DebugMux(rec)); err != nil {
				fmt.Fprintln(os.Stderr, "dcbench: debug listener:", err)
			}
		}()
		tr = rec.StartTrace("dcbench "+args[0], "")
		ctx = obs.With(ctx, tr)
	}
	var err error
	switch args[0] {
	case "list":
		err = list()
	case "run":
		if len(args) < 2 {
			usage()
		}
		err = runWorkload(args[1], opts)
	case "figure":
		if len(args) < 2 {
			usage()
		}
		if *jsonOut {
			err = exportJSON(opts)
		} else {
			err = figure(ctx, args[1], opts, *csv, *chart)
		}
	case "table":
		if len(args) < 2 {
			usage()
		}
		err = table(ctx, args[1], opts, *csv)
	case "export":
		err = exportJSON(opts)
	case "all":
		err = all(ctx, opts, *csv, *chart)
	default:
		usage()
	}
	tr.Finish()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dcbench:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: dcbench [flags] list | run <workload> | figure <1..12> | table <1..3> | export | all")
	flag.PrintDefaults()
	os.Exit(2)
}

// exportJSON dumps the full characterization sweep for offline analysis.
func exportJSON(o report.Options) error {
	results := report.Characterized(o)
	data, err := core.ExportJSON(results)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(append(data, '\n'))
	return err
}

func list() error {
	fmt.Println("Cluster workloads (Figures 2 and 5, Tables I-II):")
	for _, w := range workloads.All() {
		fmt.Printf("  %-14s %3.0f GB  %v\n", w.Name, w.InputGB, w.Domains)
	}
	fmt.Println("\nCharacterization registry (Figures 3-12):")
	for _, w := range core.Registry() {
		fmt.Printf("  %-18s %-12s %s\n", w.Name, w.Suite, w.Class)
	}
	return nil
}

func runWorkload(name string, o report.Options) error {
	w := workloads.ByName(name)
	if w == nil {
		return fmt.Errorf("unknown workload %q (try `dcbench list`)", name)
	}
	env := workloads.NewEnv(4, o.Scale, o.Seed)
	st, err := w.Run(env)
	if err != nil {
		return err
	}
	fmt.Printf("%s on 4 slaves at scale %.3f:\n", w.Name, o.Scale)
	fmt.Printf("  makespan        %10.1f s (simulated)\n", st.Makespan)
	fmt.Printf("  jobs            %10d\n", st.Jobs)
	fmt.Printf("  input           %10.2f GB (simulated)\n", float64(st.InputSimBytes)/1e9)
	fmt.Printf("  disk writes     %10.1f ops/s/node\n", st.DiskWritesPerSecond())
	fmt.Printf("  network         %10.2f GB\n", float64(st.NetBytes)/1e9)
	fmt.Printf("  core busy       %10.1f core-seconds\n", st.CoreSeconds)
	fmt.Println("  quality:")
	for k, v := range st.Quality {
		fmt.Printf("    %-22s %v\n", k, v)
	}
	return nil
}

func emit(t *report.Table, csv, chart bool) {
	if csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Print(t.String())
	if chart && len(t.Columns) > 0 {
		fmt.Print(t.BarChart(50))
	}
	fmt.Println()
}

func figure(ctx context.Context, num string, o report.Options, csv, chart bool) error {
	n, err := strconv.Atoi(num)
	if err != nil {
		return fmt.Errorf("figure number must be 1..12")
	}
	t, err := report.FigureByNumber(ctx, o, n)
	if err != nil {
		return err
	}
	emit(t, csv, chart)
	return nil
}

func table(ctx context.Context, num string, o report.Options, csv bool) error {
	n, err := strconv.Atoi(num)
	if err != nil {
		return fmt.Errorf("table number must be 1..3")
	}
	t, text, err := report.TableByNumber(ctx, o, n)
	if err != nil {
		return err
	}
	if t != nil {
		emit(t, csv, false)
		return nil
	}
	fmt.Println(text)
	return nil
}

func all(ctx context.Context, o report.Options, csv, chart bool) error {
	emit(report.Figure1(), csv, chart)
	fmt.Println(report.Table2())
	fmt.Println(report.Table3())
	t2, err := report.Figure2(ctx, o)
	if err != nil {
		return err
	}
	emit(t2, csv, chart)
	t5, err := report.Figure5(ctx, o)
	if err != nil {
		return err
	}
	emit(t5, csv, chart)
	results := report.Characterized(o)
	t1, err := report.Table1(ctx, o, results)
	if err != nil {
		return err
	}
	emit(t1, csv, false)
	for _, b := range []func([]*core.Result) *report.Table{
		report.Figure3, report.Figure4, report.Figure6, report.Figure7,
		report.Figure8, report.Figure9, report.Figure10, report.Figure11,
		report.Figure12,
	} {
		emit(b(results), csv, chart)
	}
	return nil
}
