// Recommend: the electronic-commerce recommendation scenario (the paper's
// IBCF workload). Train item-based collaborative filtering twice — serially
// with the library and distributed over the MapReduce cluster — verify they
// agree, and produce actual recommendations for a user.
package main

import (
	"fmt"
	"log"

	"dcbench/internal/analysis"
	"dcbench/internal/datagen"
	"dcbench/internal/workloads"
)

func main() {
	// Serial recommender on a rating matrix with latent structure.
	ratings := datagen.Ratings(99, 120, 200, 15)
	cf := analysis.NewItemCF(25)
	var held []datagen.Rating
	for i, r := range ratings {
		if i%10 == 0 {
			held = append(held, r) // hold out for evaluation
			continue
		}
		cf.Add(r.User, r.Item, r.Score)
	}

	var absErr float64
	n := 0
	for _, r := range held {
		if p, ok := cf.Predict(r.User, r.Item); ok {
			if d := p - r.Score; d < 0 {
				absErr -= d
			} else {
				absErr += d
			}
			n++
		}
	}
	fmt.Printf("Serial item-based CF: %d ratings, held-out MAE %.3f (scores 1-5)\n",
		len(ratings)-len(held), absErr/float64(n))

	fmt.Println("\nTop-5 recommendations for user 0:")
	for _, rec := range cf.Recommend(0, 5) {
		fmt.Printf("  item %3d  predicted score %.2f\n", rec.Item, rec.Sim)
	}

	// The same algorithm as the paper's three-job MapReduce pipeline.
	env := workloads.NewEnv(4, 0.005, 99)
	st, err := workloads.IBCFWorkload().Run(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDistributed IBCF (3 MapReduce jobs on 4 slaves):\n")
	fmt.Printf("  simulated makespan        %8.1f s\n", st.Makespan)
	fmt.Printf("  item pairs scored         %8.0f\n", st.Quality["pairs"])
	fmt.Printf("  max divergence vs serial  %8.2g (cosine similarity)\n",
		st.Quality["cosine_divergence"])
}
