// Quickstart: run one data analysis workload end to end on the simulated
// Hadoop cluster, then characterize its microarchitectural behaviour on
// the simulated Xeon E5645 core — the two halves of the dcbench pipeline.
package main

import (
	"fmt"
	"log"

	"dcbench/internal/core"
	"dcbench/internal/uarch"
	"dcbench/internal/workloads"
)

func main() {
	// --- Cluster level: WordCount on four slaves, 1% of the paper's input ---
	env := workloads.NewEnv(4, 0.01, 42)
	wc := workloads.WordCountWorkload()
	stats, err := wc.Run(env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WordCount on a 4-slave cluster (%.1f GB simulated input):\n",
		float64(stats.InputSimBytes)/1e9)
	fmt.Printf("  simulated makespan   %8.1f s\n", stats.Makespan)
	fmt.Printf("  disk writes          %8.1f ops/s per node\n", stats.DiskWritesPerSecond())
	fmt.Printf("  distinct words       %8.0f\n", stats.Quality["distinct_words"])
	fmt.Printf("  counts conserved     %v\n", stats.Quality["conservation"] == 1)

	// --- Core level: the same workload's instruction stream on the OoO model ---
	w, err := core.ByName("WordCount")
	if err != nil {
		log.Fatal(err)
	}
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 200_000
	res := core.Characterize(w, cfg, 600_000)
	c := res.Counters
	fmt.Printf("\nWordCount on the simulated Westmere core (%d instructions measured):\n",
		c.Instructions)
	fmt.Printf("  IPC                  %8.2f   (paper: ~%.2f)\n", c.IPC(), w.Paper.IPC)
	fmt.Printf("  kernel instructions  %8.1f%%  (paper: ~%.0f%%)\n", 100*c.KernelShare(), w.Paper.KernelPct)
	fmt.Printf("  L1I misses / k-inst  %8.1f   (paper: ~%.0f)\n", c.L1IMPKI(), w.Paper.L1IMPKI)
	fmt.Printf("  L2 misses / k-inst   %8.1f\n", c.L2MPKI())
	fmt.Printf("  branch mispredicts   %8.1f%%\n", 100*c.BranchMispredictRatio())
	b := c.StallBreakdown()
	fmt.Printf("  stall breakdown      fetch %.0f%%  RAT %.0f%%  RS %.0f%%  ROB %.0f%%\n",
		100*b[0], 100*b[1], 100*b[3], 100*b[5])
}
