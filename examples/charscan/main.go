// Charscan: a miniature of the paper's whole evaluation — characterize a
// representative workload from each class on the simulated core and print
// the cross-class comparison the paper builds its conclusions on.
package main

import (
	"fmt"
	"log"

	"dcbench/internal/core"
	"dcbench/internal/uarch"
)

func main() {
	names := []string{
		"K-means",      // data analysis, compute-shaped
		"Sort",         // data analysis, I/O-shaped
		"Data Serving", // scale-out service
		"SPECINT",      // desktop
		"HPCC-HPL",     // compute-bound HPC
		"HPCC-STREAM",  // bandwidth-bound HPC
	}
	cfg := uarch.DefaultConfig()
	cfg.Warmup = 200_000

	fmt.Printf("%-14s %6s %7s %9s %8s %9s %10s\n",
		"workload", "IPC", "kern%", "L1I mpki", "L2 mpki", "dTLB pki", "mispred%")
	for _, name := range names {
		w, err := core.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		c := core.Characterize(w, cfg, 600_000).Counters
		fmt.Printf("%-14s %6.2f %7.1f %9.1f %8.1f %9.2f %10.1f\n",
			name, c.IPC(), 100*c.KernelShare(), c.L1IMPKI(), c.L2MPKI(),
			c.DTLBWalksPKI(), 100*c.BranchMispredictRatio())
	}
	fmt.Println("\nThe paper's classes separate exactly here: services sit at the")
	fmt.Println("bottom on IPC with kernel-heavy, front-end-bound profiles; data")
	fmt.Println("analysis lands in the middle with modest kernel time and back-end")
	fmt.Println("stalls; dense HPC kernels top the IPC chart while STREAM-like")
	fmt.Println("kernels are pure memory bandwidth.")
}
