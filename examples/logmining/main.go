// Logmining: the search-engine log analysis scenario from the paper's
// Table II — run Grep and WordCount over the same simulated corpus at
// several cluster sizes and compare how the two basic operations scale
// (the Figure 2 experiment, reduced to two workloads).
package main

import (
	"fmt"
	"log"

	"dcbench/internal/workloads"
)

func main() {
	const scale = 0.01
	fmt.Println("Log mining at cluster sizes 1, 2, 4, 8 (simulated):")
	for _, w := range []*workloads.Workload{
		workloads.GrepWorkload(),
		workloads.WordCountWorkload(),
	} {
		fmt.Printf("\n%s (%.0f GB input at scale 1):\n", w.Name, w.InputGB)
		var base float64
		for _, slaves := range []int{1, 2, 4, 8} {
			env := workloads.NewEnv(slaves, scale, 7)
			st, err := w.Run(env)
			if err != nil {
				log.Fatal(err)
			}
			if slaves == 1 {
				base = st.Makespan
			}
			fmt.Printf("  %d slave(s): makespan %7.1fs  speedup %5.2fx  disk %6.1f w/s/node  net %5.2f GB\n",
				slaves, st.Makespan, base/st.Makespan,
				st.DiskWritesPerSecond(), float64(st.NetBytes)/1e9)
		}
	}
	fmt.Println("\nGrep is map-only and scales with the disks; WordCount adds a")
	fmt.Println("combiner+shuffle stage, so its curve flattens slightly earlier.")
}
