// Package dcbench is a from-scratch Go reproduction of "Characterizing
// Data Analysis Workloads in Data Centers" (Jia et al., IISWC 2013) — the
// DCBench paper. See README.md for the architecture overview; the library
// lives under internal/ and the benchmark harness in bench_test.go
// regenerates every table and figure of the paper's evaluation.
package dcbench
